// Package tage implements the TAGE conditional branch predictor (Seznec &
// Michaud, JILP 2006): a bimodal base predictor backed by several partially
// tagged tables indexed with geometrically increasing global-history
// lengths.
//
// The implementation follows the reference simulator's structure: folded
// (cyclic-shift-register) history compressions for index and tag
// computation, a path-history hash, per-entry signed prediction counters
// and useful counters, the USE_ALT_ON_NA newly-allocated-entry heuristic,
// misprediction-driven allocation preferring shorter histories, and
// periodic graceful aging of the useful counters.
//
// Everything the paper's storage-free confidence estimator needs to observe
// — which component provided the prediction and the value of its prediction
// counter — is exposed through the Observation returned by Predict.
package tage

import (
	"fmt"

	"repro/internal/bimodal"
	"repro/internal/counter"
	"repro/internal/history"
	"repro/internal/xrand"
)

// ProviderBimodal is the Observation.Provider value meaning the base
// bimodal component provided the prediction.
const ProviderBimodal = -1

// Observation captures everything visible at the outputs of the predictor
// components for one prediction — the raw material of the paper's
// storage-free confidence estimation.
type Observation struct {
	// PC is the branch the observation belongs to.
	PC uint64
	// Pred is the final prediction.
	Pred bool
	// AltPred is the prediction that would have been made had the provider
	// component missed (the next hitting component, or the base predictor).
	AltPred bool
	// Provider is the tagged table index (0-based, longer history = larger
	// index) or ProviderBimodal.
	Provider int
	// ProviderCtr is the provider's signed prediction counter (tagged
	// provider only).
	ProviderCtr int8
	// ProviderU is the provider's useful counter (tagged provider only).
	ProviderU uint8
	// BimCtr is the base bimodal counter for this branch (always valid).
	BimCtr counter.Bimodal
	// UsedAlt reports that the final prediction came from the alternate
	// prediction under the USE_ALT_ON_NA heuristic.
	UsedAlt bool
	// AltProvider is the table index of the alternate provider, or
	// ProviderBimodal.
	AltProvider int
	// AltCtr is the alternate provider's counter (tagged alternate only).
	AltCtr int8
}

// Tagged reports whether the prediction was provided by a tagged component.
func (o Observation) Tagged() bool { return o.Provider != ProviderBimodal }

// Strength returns |2·ctr+1| of the provider counter for tagged providers,
// the paper's tagged-class discriminator; it returns 0 for bimodal
// providers.
func (o Observation) Strength() int {
	if !o.Tagged() {
		return 0
	}
	return counter.Strength(o.ProviderCtr)
}

type entry struct {
	ctr int8
	tag uint16
	u   uint8
}

type table struct {
	entries   []entry
	histLen   int
	indexFold *history.Folded
	tagFold1  *history.Folded
	tagFold2  *history.Folded
}

// Predictor is a TAGE predictor instance. It is not safe for concurrent
// use; simulate one stream per Predictor.
type Predictor struct {
	cfg    Config
	base   *bimodal.Predictor
	tables []table

	ghist *history.Buffer
	phist *history.Path

	useAltOnNA int8 // 4-bit signed: >= 0 favors altpred on weak new entries

	auto counter.Automaton
	rng  *xrand.Rand

	tick uint64

	// Per-prediction scratch captured by Predict for the paired Update.
	lastObs      Observation
	havePred     bool
	indices      []uint32
	tags         []uint16
	hitBank      int // 1-based; 0 = none
	altBank      int // 1-based; 0 = none
	longestPred  bool
	allocScratch []int
}

// New builds a predictor with the standard saturating-counter automaton.
func New(cfg Config) *Predictor {
	return NewWithAutomaton(cfg, counter.Standard{})
}

// NewWithAutomaton builds a predictor whose tagged prediction counters are
// driven by the given update automaton — counter.Standard{} for the
// unmodified TAGE, or a *counter.Probabilistic for the paper's §6
// modification.
func NewWithAutomaton(cfg Config, auto counter.Automaton) *Predictor {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	maxHist := cfg.HistLengths[len(cfg.HistLengths)-1]
	p := &Predictor{
		cfg:     cfg,
		base:    bimodal.New(cfg.BimodalLog),
		tables:  make([]table, len(cfg.HistLengths)),
		ghist:   history.NewBuffer(maxHist + 2),
		phist:   history.NewPath(cfg.PathBits),
		auto:    auto,
		rng:     xrand.New(xrand.Mix64(cfg.Seed ^ 0x7A6E)),
		indices: make([]uint32, len(cfg.HistLengths)+1),
		tags:    make([]uint16, len(cfg.HistLengths)+1),

		allocScratch: make([]int, 0, len(cfg.HistLengths)),
	}
	tagBits := int(cfg.TagBits)
	for i := range p.tables {
		hl := cfg.HistLengths[i]
		t2 := tagBits - 1
		if t2 < 1 {
			t2 = 1
		}
		p.tables[i] = table{
			entries:   make([]entry, 1<<cfg.TaggedLog),
			histLen:   hl,
			indexFold: history.NewFolded(hl, int(cfg.TaggedLog)),
			tagFold1:  history.NewFolded(hl, tagBits),
			tagFold2:  history.NewFolded(hl, t2),
		}
	}
	return p
}

// Config returns the (normalized) configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Automaton returns the installed tagged-counter update automaton.
func (p *Predictor) Automaton() counter.Automaton { return p.auto }

// pathHash implements the F() path-history mixing function of the
// reference TAGE simulator for table bank (1-based).
func (p *Predictor) pathHash(bank int) uint32 {
	logg := uint(p.cfg.TaggedLog)
	size := p.tables[bank-1].histLen
	if size > int(p.cfg.PathBits) {
		size = int(p.cfg.PathBits)
	}
	a := p.phist.Value() & ((1 << uint(size)) - 1)
	mask := (uint32(1) << logg) - 1
	a1 := a & mask
	a2 := a >> logg
	sh := uint(bank) % logg
	a2 = ((a2 << sh) & mask) + (a2 >> (logg - sh))
	a = a1 ^ a2
	a = ((a << sh) & mask) + (a >> (logg - sh))
	return a & mask
}

// tableIndex computes the index into tagged table bank (1-based).
func (p *Predictor) tableIndex(pc uint64, bank int) uint32 {
	t := &p.tables[bank-1]
	logg := uint(p.cfg.TaggedLog)
	idx := uint32(pc>>2) ^ uint32(pc>>(2+logg)) ^ t.indexFold.Value() ^ p.pathHash(bank)
	return idx & ((1 << logg) - 1)
}

// tableTag computes the partial tag for table bank (1-based).
func (p *Predictor) tableTag(pc uint64, bank int) uint16 {
	t := &p.tables[bank-1]
	tag := uint32(pc>>2) ^ t.tagFold1.Value() ^ (t.tagFold2.Value() << 1)
	return uint16(tag & ((1 << p.cfg.TagBits) - 1))
}

// Predict computes the prediction for pc and returns the component
// observation. Each Predict must be followed by exactly one Update for the
// same pc before predicting the next branch.
func (p *Predictor) Predict(pc uint64) Observation {
	m := len(p.tables)
	p.hitBank, p.altBank = 0, 0
	for bank := 1; bank <= m; bank++ {
		p.indices[bank] = p.tableIndex(pc, bank)
		p.tags[bank] = p.tableTag(pc, bank)
	}
	for bank := m; bank >= 1; bank-- {
		if p.tables[bank-1].entries[p.indices[bank]].tag == p.tags[bank] {
			if p.hitBank == 0 {
				p.hitBank = bank
			} else {
				p.altBank = bank
				break
			}
		}
	}

	obs := Observation{
		PC:          pc,
		Provider:    ProviderBimodal,
		AltProvider: ProviderBimodal,
		BimCtr:      p.base.Counter(pc),
	}
	basePred := obs.BimCtr.Taken()

	if p.hitBank == 0 {
		obs.Pred = basePred
		obs.AltPred = basePred
		p.longestPred = basePred
		p.lastObs = obs
		p.havePred = true
		return obs
	}

	provider := &p.tables[p.hitBank-1].entries[p.indices[p.hitBank]]
	p.longestPred = counter.TakenSigned(provider.ctr)

	altPred := basePred
	if p.altBank > 0 {
		alt := &p.tables[p.altBank-1].entries[p.indices[p.altBank]]
		altPred = counter.TakenSigned(alt.ctr)
		obs.AltProvider = p.altBank - 1
		obs.AltCtr = alt.ctr
	}

	obs.Provider = p.hitBank - 1
	obs.ProviderCtr = provider.ctr
	obs.ProviderU = provider.u
	obs.AltPred = altPred

	// Prediction selection (paper §3.1): use the provider counter unless it
	// is weak and USE_ALT_ON_NA is non-negative.
	if p.cfg.DisableUseAltOnNA || p.useAltOnNA < 0 || !counter.WeakSigned(provider.ctr) {
		obs.Pred = p.longestPred
	} else {
		obs.Pred = altPred
		obs.UsedAlt = obs.Pred != p.longestPred
	}

	p.lastObs = obs
	p.havePred = true
	return obs
}

// Update resolves the branch predicted by the immediately preceding
// Predict call, training tables, allocating entries on mispredictions, and
// advancing the global/path histories.
func (p *Predictor) Update(pc uint64, taken bool) {
	if !p.havePred || p.lastObs.PC != pc {
		panic(fmt.Sprintf("tage: Update(%#x) without matching Predict (last %#x)", pc, p.lastObs.PC))
	}
	p.havePred = false
	obs := p.lastObs
	m := len(p.tables)
	ctrBits := p.cfg.CtrBits

	// Allocation on misprediction when a longer-history table exists.
	if obs.Pred != taken && p.hitBank < m {
		p.allocate(taken)
	}

	if p.hitBank > 0 {
		provider := &p.tables[p.hitBank-1].entries[p.indices[p.hitBank]]

		// USE_ALT_ON_NA monitors whether the alternate prediction beats a
		// weak ("newly allocated") provider.
		if counter.WeakSigned(provider.ctr) && p.longestPred != obs.AltPred {
			if obs.AltPred == taken {
				if p.useAltOnNA < 7 {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		}

		// When the provider entry is not yet established (u == 0), also
		// train the alternate prediction source.
		if provider.u == 0 {
			if p.altBank > 0 {
				alt := &p.tables[p.altBank-1].entries[p.indices[p.altBank]]
				alt.ctr = p.auto.Update(alt.ctr, ctrBits, taken)
			} else {
				p.base.Update(pc, taken)
			}
		}

		provider.ctr = p.auto.Update(provider.ctr, ctrBits, taken)

		// Useful counter: credit the provider when it disagreed with the
		// alternate prediction and was right; debit when wrong.
		if p.longestPred != obs.AltPred {
			if p.longestPred == taken {
				provider.u = counter.IncUnsigned(provider.u, p.cfg.UBits)
			} else {
				provider.u = counter.DecUnsigned(provider.u)
			}
		}
	} else {
		p.base.Update(pc, taken)
	}

	// Graceful aging of useful counters: a one-bit right shift of every u
	// every UResetPeriod updates.
	p.tick++
	if p.tick&(p.cfg.UResetPeriod-1) == 0 {
		for i := range p.tables {
			es := p.tables[i].entries
			for j := range es {
				es[j].u >>= 1
			}
		}
	}

	// Advance histories.
	p.ghist.Push(taken)
	p.phist.Push(pc)
	for i := range p.tables {
		t := &p.tables[i]
		t.indexFold.Update(p.ghist)
		t.tagFold1.Update(p.ghist)
		t.tagFold2.Update(p.ghist)
	}
}

// allocate installs at most one new entry in a table with a longer history
// than the provider, choosing among entries with u == 0 with a geometric
// preference for shorter histories (each candidate is taken with
// probability 1/2 before considering the next, the reference design's 2:1
// skew); if every candidate is useful, their u counters are decremented
// instead (the anti-ping-pong rule of the TAGE paper).
func (p *Predictor) allocate(taken bool) {
	m := len(p.tables)
	p.allocScratch = p.allocScratch[:0]
	for bank := p.hitBank + 1; bank <= m; bank++ {
		if p.tables[bank-1].entries[p.indices[bank]].u == 0 {
			p.allocScratch = append(p.allocScratch, bank)
		}
	}
	if len(p.allocScratch) == 0 {
		for bank := p.hitBank + 1; bank <= m; bank++ {
			e := &p.tables[bank-1].entries[p.indices[bank]]
			e.u = counter.DecUnsigned(e.u)
		}
		return
	}
	chosen := p.allocScratch[len(p.allocScratch)-1]
	for _, bank := range p.allocScratch[:len(p.allocScratch)-1] {
		if p.rng.OneIn(2) {
			chosen = bank
			break
		}
	}
	e := &p.tables[chosen-1].entries[p.indices[chosen]]
	e.tag = p.tags[chosen]
	e.u = 0
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

// UseAltOnNA returns the current USE_ALT_ON_NA counter value (for tests
// and diagnostics).
func (p *Predictor) UseAltOnNA() int8 { return p.useAltOnNA }

// TaggedEntries returns the number of entries in each tagged table.
func (p *Predictor) TaggedEntries() int { return 1 << p.cfg.TaggedLog }

// TableStats is per-tagged-table occupancy introspection.
type TableStats struct {
	// HistLen is the table's history length.
	HistLen int
	// LiveEntries counts entries with a non-weak prediction counter
	// (established state).
	LiveEntries int
	// UsefulEntries counts entries with u > 0 (protected from allocation).
	UsefulEntries int
	// SaturatedEntries counts entries with a saturated counter.
	SaturatedEntries int
}

// Stats returns a per-table occupancy snapshot — observability for
// capacity analysis (which tables hold established state, how much of it
// is protected, how much has saturated).
func (p *Predictor) Stats() []TableStats {
	out := make([]TableStats, len(p.tables))
	for i := range p.tables {
		t := &p.tables[i]
		s := TableStats{HistLen: t.histLen}
		for _, e := range t.entries {
			if !counter.WeakSigned(e.ctr) {
				s.LiveEntries++
			}
			if e.u > 0 {
				s.UsefulEntries++
			}
			if counter.SaturatedSigned(e.ctr, p.cfg.CtrBits) {
				s.SaturatedEntries++
			}
		}
		out[i] = s
	}
	return out
}
