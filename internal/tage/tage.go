// Package tage implements the TAGE conditional branch predictor (Seznec &
// Michaud, JILP 2006): a bimodal base predictor backed by several partially
// tagged tables indexed with geometrically increasing global-history
// lengths.
//
// The implementation follows the reference simulator's structure: folded
// (cyclic-shift-register) history compressions for index and tag
// computation, a path-history hash, per-entry signed prediction counters
// and useful counters, the USE_ALT_ON_NA newly-allocated-entry heuristic,
// misprediction-driven allocation preferring shorter histories, and
// periodic graceful aging of the useful counters.
//
// Everything the paper's storage-free confidence estimator needs to observe
// — which component provided the prediction and the value of its prediction
// counter — is exposed through the Observation returned by Predict.
package tage

import (
	"fmt"

	"repro/internal/bimodal"
	"repro/internal/counter"
	"repro/internal/history"
	"repro/internal/xrand"
)

// ProviderBimodal is the Observation.Provider value meaning the base
// bimodal component provided the prediction.
const ProviderBimodal = -1

// Observation captures everything visible at the outputs of the predictor
// components for one prediction — the raw material of the paper's
// storage-free confidence estimation.
type Observation struct {
	// PC is the branch the observation belongs to.
	PC uint64
	// Pred is the final prediction.
	Pred bool
	// AltPred is the prediction that would have been made had the provider
	// component missed (the next hitting component, or the base predictor).
	AltPred bool
	// Provider is the tagged table index (0-based, longer history = larger
	// index) or ProviderBimodal.
	Provider int
	// ProviderCtr is the provider's signed prediction counter (tagged
	// provider only).
	ProviderCtr int8
	// ProviderU is the provider's useful counter (tagged provider only).
	ProviderU uint8
	// BimCtr is the base bimodal counter for this branch (always valid).
	BimCtr counter.Bimodal
	// UsedAlt reports that the final prediction came from the alternate
	// prediction under the USE_ALT_ON_NA heuristic.
	UsedAlt bool
	// AltProvider is the table index of the alternate provider, or
	// ProviderBimodal.
	AltProvider int
	// AltCtr is the alternate provider's counter (tagged alternate only).
	AltCtr int8
}

// Tagged reports whether the prediction was provided by a tagged component.
//repro:hotpath
func (o Observation) Tagged() bool { return o.Provider != ProviderBimodal }

// Strength returns |2·ctr+1| of the provider counter for tagged providers,
// the paper's tagged-class discriminator; it returns 0 for bimodal
// providers.
//repro:hotpath
func (o Observation) Strength() int {
	if !o.Tagged() {
		return 0
	}
	return counter.Strength(o.ProviderCtr)
}

// Predictor is a TAGE predictor instance. It is not safe for concurrent
// use; simulate one stream per Predictor.
//
// All predictor state lives in one backing arena: the packed bimodal
// base table followed by the tagged tables, one uint32 word per tagged
// entry (tag, ctr and u bitfields — see entry.go). A tagged-bank probe
// is one load, and the whole predictor is one allocation. All
// per-prediction scratch is preallocated, so the Predict+Update hot path
// performs no heap allocations.
type Predictor struct {
	cfg  Config          //repro:derived construction input, immutable
	base *bimodal.Packed //repro:derived view aliasing the head of arena, rebuilt on restore

	// arena is the single backing allocation: bimodal words first, then
	// the tagged-entry words aliased by entries.
	arena []uint32

	// entries is the flattened packed tagged-table storage. Entry row r
	// of table t (0-based) lives at index t<<taggedLog | r.
	entries []uint32 //repro:derived view aliasing the tail of arena, rebuilt on restore

	numTables int    //repro:derived geometry fixed by cfg
	taggedLog uint   //repro:derived geometry fixed by cfg
	rowMask   uint32 //repro:derived geometry fixed by cfg
	tagMask   uint32 //repro:derived geometry fixed by cfg

	histLens []int //repro:derived geometric history lengths fixed by cfg

	// Per-table pathHash parameters, precomputed so the per-probe hash is
	// pure shift/mask work (the bank % taggedLog rotation amount used to
	// cost an integer division per probe).
	pathSpec []pathSpec //repro:derived fixed by cfg

	// folds holds each table's folded-history registers and history
	// length in one struct: the per-branch history advance walks one
	// contiguous slice, and a probe loads a bank's three registers from
	// adjacent words with a single bounds check.
	folds []tableFolds

	ghist *history.Buffer
	phist *history.Path

	useAltOnNA int8 // 4-bit signed: >= 0 favors altpred on weak new entries

	auto counter.Automaton //repro:derived fixed at construction; the rng it draws from is encoded
	rng  *xrand.Rand

	tick uint64

	// Per-prediction scratch captured by Predict for the paired Update;
	// havePred is cleared on restore, invalidating all of it.
	lastObs      Observation //repro:derived per-prediction scratch
	havePred     bool
	pos          []uint32 //repro:derived per-prediction scratch
	tagc         []uint16 //repro:derived per-prediction scratch
	hitBank      int      //repro:derived per-prediction scratch
	altBank      int      //repro:derived per-prediction scratch
	longestPred  bool     //repro:derived per-prediction scratch
	allocScratch []int    //repro:derived per-prediction scratch
}

// pathSpec is one table's precomputed pathHash parameters: the
// path-history mask ((1 << min(histLen, PathBits)) - 1) and the per-bank
// rotation amount (bank % taggedLog, 1-based bank).
type pathSpec struct {
	mask uint32
	sh   uint32
}

// tableFolds is one tagged table's folded-history state: the index
// compression, the two tag compressions, and the history length whose
// oldest bit leaves the fold window on each update.
type tableFolds struct {
	idx     history.Folded
	tag     history.Folded
	tag2    history.Folded
	histLen int
}

// New builds a predictor with the standard saturating-counter automaton.
func New(cfg Config) *Predictor {
	return NewWithAutomaton(cfg, counter.Standard{})
}

// NewWithAutomaton builds a predictor whose tagged prediction counters are
// driven by the given update automaton — counter.Standard{} for the
// unmodified TAGE, or a *counter.Probabilistic for the paper's §6
// modification.
func NewWithAutomaton(cfg Config, auto counter.Automaton) *Predictor {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	maxHist := cfg.HistLengths[len(cfg.HistLengths)-1]
	m := len(cfg.HistLengths)
	rows := 1 << cfg.TaggedLog
	// One arena holds the whole predictor: the packed bimodal base table
	// in the leading words, the tagged tables in the rest.
	bimWords := bimodal.PackedWords(cfg.BimodalLog)
	arena := make([]uint32, bimWords+m*rows)
	p := &Predictor{
		cfg:       cfg,
		base:      bimodal.NewPackedIn(arena[:bimWords:bimWords], cfg.BimodalLog),
		arena:     arena,
		entries:   arena[bimWords:],
		numTables: m,
		taggedLog: cfg.TaggedLog,
		rowMask:   uint32(rows - 1),
		tagMask:   (uint32(1) << cfg.TagBits) - 1,
		histLens:  append([]int(nil), cfg.HistLengths...),
		pathSpec:  make([]pathSpec, m),
		folds:     make([]tableFolds, m),
		ghist:     history.NewBuffer(maxHist + 2),
		phist:     history.NewPath(cfg.PathBits),
		auto:      auto,
		rng:       xrand.New(xrand.Mix64(cfg.Seed ^ 0x7A6E)),
		pos:       make([]uint32, m+1),
		tagc:      make([]uint16, m+1),

		allocScratch: make([]int, 0, m),
	}
	tagBits := int(cfg.TagBits)
	for i := 0; i < m; i++ {
		hl := cfg.HistLengths[i]
		t2 := tagBits - 1
		if t2 < 1 {
			t2 = 1
		}
		ps := uint(hl)
		if ps > cfg.PathBits {
			ps = cfg.PathBits
		}
		p.pathSpec[i] = pathSpec{mask: uint32(1)<<ps - 1, sh: uint32(uint(i+1) % cfg.TaggedLog)}
		p.folds[i] = tableFolds{
			idx:     history.MakeFolded(hl, int(cfg.TaggedLog)),
			tag:     history.MakeFolded(hl, tagBits),
			tag2:    history.MakeFolded(hl, t2),
			histLen: hl,
		}
	}
	return p
}

// Config returns the (normalized) configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Automaton returns the installed tagged-counter update automaton.
func (p *Predictor) Automaton() counter.Automaton { return p.auto }

// pathHash implements the F() path-history mixing function of the
// reference TAGE simulator for table bank (1-based). The per-bank
// rotation amount and path mask are precomputed, so the hash is pure
// shift/mask/add work.
//repro:hotpath
func (p *Predictor) pathHash(bank int) uint32 {
	// uint compare: one cold guard instead of a bounds check per field.
	i := uint(bank) - 1
	if i >= uint(len(p.pathSpec)) {
		panic("tage: pathHash bank out of range")
	}
	ps := p.pathSpec[i]
	logg := uint(p.taggedLog)
	a := p.phist.Value() & ps.mask
	mask := p.rowMask
	a1 := a & mask
	a2 := a >> logg
	sh := uint(ps.sh)
	a2 = ((a2 << sh) & mask) + (a2 >> (logg - sh))
	a = a1 ^ a2
	a = ((a << sh) & mask) + (a >> (logg - sh))
	return a & mask
}

// tableIndex computes the index (row within the table) into tagged table
// bank (1-based), folding the index compression of the bank's global
// history with the PC and path-history hash.
//repro:hotpath
func (p *Predictor) tableIndex(pc uint64, bank int) uint32 {
	i := uint(bank) - 1
	if i >= uint(len(p.folds)) {
		panic("tage: tableIndex bank out of range")
	}
	idx := uint32(pc>>2) ^ uint32(pc>>(2+p.taggedLog)) ^ p.folds[i].idx.Value() ^ p.pathHash(bank)
	return idx & p.rowMask
}

// tableTag computes the partial tag for table bank (1-based).
//repro:hotpath
func (p *Predictor) tableTag(pc uint64, bank int) uint16 {
	i := uint(bank) - 1
	if i >= uint(len(p.folds)) {
		panic("tage: tableTag bank out of range")
	}
	f := &p.folds[i]
	tag := uint32(pc>>2) ^ f.tag.Value() ^ (f.tag2.Value() << 1)
	return uint16(tag & p.tagMask)
}

// Predict computes the prediction for pc and returns the component
// observation. Each Predict must be followed by exactly one Update for the
// same pc before predicting the next branch.
//repro:hotpath
func (p *Predictor) Predict(pc uint64) Observation {
	m := p.numTables
	logg := p.taggedLog
	// Scratch as locals behind one geometry guard: with
	// len(pos) == len(tagc) == m+1 established, the per-bank loops below
	// index the scratch slices check-free.
	pos, tagc := p.pos, p.tagc
	if len(pos) != m+1 || len(tagc) != m+1 {
		panic("tage: prediction scratch out of sync with geometry")
	}
	entries := p.entries
	hitBank, altBank := 0, 0
	// One pass computes each bank's absolute flat-storage position and
	// partial tag, reading the bank's three folded-history registers from
	// one contiguous cache line. The loops bound bank by len(pos) rather
	// than m (the guard made them equal) so the compiler can discharge
	// the scratch indexing without reasoning about m+1 overflow.
	for bank := 1; bank < len(pos); bank++ {
		pos[bank] = uint32(bank-1)<<logg | p.tableIndex(pc, bank)
		tagc[bank] = p.tableTag(pc, bank)
	}
	for bank := len(pos) - 1; bank >= 1; bank-- {
		if entryTag(entries[pos[bank]]) == tagc[bank] { //repro:allow-bce pos[bank] = (bank-1)<<taggedLog | (row & rowMask) < numTables<<taggedLog = len(entries) by arena construction
			if hitBank == 0 {
				hitBank = bank
			} else {
				altBank = bank
				break
			}
		}
	}
	p.hitBank, p.altBank = hitBank, altBank

	obs := Observation{
		PC:          pc,
		Provider:    ProviderBimodal,
		AltProvider: ProviderBimodal,
		BimCtr:      p.base.Counter(pc), //repro:allow-bce inlined bimodal read: slot/packedPerWord < len(words) by NewPackedIn's length check
	}
	basePred := obs.BimCtr.Taken()

	if hitBank == 0 {
		obs.Pred = basePred
		obs.AltPred = basePred
		p.longestPred = basePred
		p.lastObs = obs
		p.havePred = true
		return obs
	}

	// The provider's word was just loaded by the tag-match loop; ctr and
	// u come out of the same word with no further memory traffic.
	providerEntry := entries[pos[hitBank]] //repro:allow-bce pos[hitBank] is an arena position < len(entries) by construction (see the tag-match loop)
	providerCtr := entryCtr(providerEntry)
	p.longestPred = counter.TakenSigned(providerCtr)

	altPred := basePred
	if altBank > 0 {
		altCtr := entryCtr(entries[pos[altBank]]) //repro:allow-bce pos[altBank] is an arena position < len(entries) by construction
		altPred = counter.TakenSigned(altCtr)
		obs.AltProvider = altBank - 1
		obs.AltCtr = altCtr
	}

	obs.Provider = hitBank - 1
	obs.ProviderCtr = providerCtr
	obs.ProviderU = entryU(providerEntry)
	obs.AltPred = altPred

	// Prediction selection (paper §3.1): use the provider counter unless it
	// is weak and USE_ALT_ON_NA is non-negative.
	if p.cfg.DisableUseAltOnNA || p.useAltOnNA < 0 || !counter.WeakSigned(providerCtr) {
		obs.Pred = p.longestPred
	} else {
		obs.Pred = altPred
		obs.UsedAlt = obs.Pred != p.longestPred
	}

	p.lastObs = obs
	p.havePred = true
	return obs
}

// Update resolves the branch predicted by the immediately preceding
// Predict call, training tables, allocating entries on mispredictions, and
// advancing the global/path histories.
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool) {
	if !p.havePred || p.lastObs.PC != pc {
		panic(fmt.Sprintf("tage: Update(%#x) without matching Predict (last %#x)", pc, p.lastObs.PC)) //repro:allow-alloc guard path: protocol violation aborts the run, allocation cost is irrelevant
	}
	p.havePred = false
	obs := p.lastObs
	m := p.numTables
	ctrBits := p.cfg.CtrBits
	hitBank, altBank := p.hitBank, p.altBank
	entries := p.entries

	// Allocation on misprediction when a longer-history table exists.
	if obs.Pred != taken && hitBank < m {
		p.allocate(taken)
	}

	if hitBank > 0 {
		// uint compares: one cold guard lifts the scratch-index bounds
		// checks off the provider/alternate updates below.
		pos := p.pos
		if uint(hitBank) >= uint(len(pos)) || uint(altBank) >= uint(len(pos)) {
			panic("tage: prediction scratch out of sync with geometry")
		}
		// The provider's ctr and u updates below are a read-modify-write
		// of one entry word: load once, rewrite fields, store once.
		providerPos := pos[hitBank]
		e := entries[providerPos] //repro:allow-bce providerPos = (hitBank-1)<<taggedLog | (row & rowMask) < len(entries) by arena construction
		ctr := entryCtr(e)

		// USE_ALT_ON_NA monitors whether the alternate prediction beats a
		// weak ("newly allocated") provider.
		if counter.WeakSigned(ctr) && p.longestPred != obs.AltPred {
			if obs.AltPred == taken {
				if p.useAltOnNA < 7 {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		}

		// When the provider entry is not yet established (u == 0), also
		// train the alternate prediction source.
		if entryU(e) == 0 {
			if altBank > 0 {
				altPos := pos[altBank]
				ae := entries[altPos] //repro:allow-bce altPos is an arena position < len(entries) by construction
				entries[altPos] = entrySetCtr(ae, p.auto.Update(entryCtr(ae), ctrBits, taken))
			} else {
				p.base.Update(pc, taken)
			}
		}

		e = entrySetCtr(e, p.auto.Update(ctr, ctrBits, taken))

		// Useful counter: credit the provider when it disagreed with the
		// alternate prediction and was right; debit when wrong.
		if p.longestPred != obs.AltPred {
			if p.longestPred == taken {
				e = entrySetU(e, counter.IncUnsigned(entryU(e), p.cfg.UBits))
			} else {
				e = entrySetU(e, counter.DecUnsigned(entryU(e)))
			}
		}
		entries[providerPos] = e
	} else {
		p.base.Update(pc, taken)
	}

	// Graceful aging of useful counters: a one-bit right shift of every u
	// every UResetPeriod updates — one pass over the flat entry array.
	p.tick++
	if p.tick&(p.cfg.UResetPeriod-1) == 0 {
		for j := range entries {
			entries[j] = entryAgeU(entries[j])
		}
	}

	// Advance histories: push the outcome and path bits, then run every
	// folded-history register in one pass over the contiguous fold slice.
	// The three folds of a table share one history window, so the boundary
	// bits are loaded once per table and fed from registers (the newest
	// bit is the outcome just pushed).
	p.ghist.Push(taken) //repro:allow-bce inlined circular-buffer write: head & mask < len(bits) by NewBuffer's power-of-two sizing
	p.phist.Push(pc)
	var newest uint8
	if taken {
		newest = 1
	}
	folds := p.folds
	for t := range folds {
		f := &folds[t]
		leaving := p.ghist.Bit(f.histLen) //repro:allow-bce inlined circular-buffer read: (head+i) & mask < len(bits) by NewBuffer's power-of-two sizing
		f.idx.UpdateBits(newest, leaving)
		f.tag.UpdateBits(newest, leaving)
		f.tag2.UpdateBits(newest, leaving)
	}
}

// allocate installs at most one new entry in a table with a longer history
// than the provider, choosing among entries with u == 0 with a geometric
// preference for shorter histories (each candidate is taken with
// probability 1/2 before considering the next, the reference design's 2:1
// skew); if every candidate is useful, their u counters are decremented
// instead (the anti-ping-pong rule of the TAGE paper).
//repro:hotpath
func (p *Predictor) allocate(taken bool) {
	m := p.numTables
	// Same geometry guard as Predict: with len(pos) == len(tagc) == m+1
	// established and hitBank ranged, the candidate loops below index
	// the scratch slices check-free.
	pos, tagc, entries := p.pos, p.tagc, p.entries
	if len(pos) != m+1 || len(tagc) != m+1 {
		panic("tage: prediction scratch out of sync with geometry")
	}
	hitBank := p.hitBank
	if uint(hitBank) >= uint(len(pos)) {
		panic("tage: stale provider bank")
	}
	scratch := p.allocScratch[:0]
	for bank := hitBank + 1; bank < len(pos); bank++ {
		if entryU(entries[pos[bank]]) == 0 { //repro:allow-bce pos[bank] is an arena position < len(entries) by construction
			scratch = append(scratch, bank)
		}
	}
	p.allocScratch = scratch
	if len(scratch) == 0 {
		for bank := hitBank + 1; bank < len(pos); bank++ {
			pp := pos[bank]
			e := entries[pp] //repro:allow-bce pos[bank] is an arena position < len(entries) by construction
			entries[pp] = entrySetU(e, counter.DecUnsigned(entryU(e)))
		}
		return
	}
	chosen := scratch[len(scratch)-1]
	for _, bank := range scratch[:len(scratch)-1] {
		if p.rng.OneIn(2) {
			chosen = bank
			break
		}
	}
	var ctr int8
	if !taken {
		ctr = -1
	}
	if uint(chosen) >= uint(len(pos)) {
		panic("tage: allocation candidate out of range")
	}
	entries[pos[chosen]] = packEntry(tagc[chosen], ctr, 0) //repro:allow-bce pos[chosen] is an arena position < len(entries) by construction
}

// UseAltOnNA returns the current USE_ALT_ON_NA counter value (for tests
// and diagnostics).
//repro:hotpath
func (p *Predictor) UseAltOnNA() int8 { return p.useAltOnNA }

// TaggedEntries returns the number of entries in each tagged table.
func (p *Predictor) TaggedEntries() int { return 1 << p.cfg.TaggedLog }

// TableStats is per-tagged-table occupancy introspection.
type TableStats struct {
	// HistLen is the table's history length.
	HistLen int
	// LiveEntries counts entries with a non-weak prediction counter
	// (established state).
	LiveEntries int
	// UsefulEntries counts entries with u > 0 (protected from allocation).
	UsefulEntries int
	// SaturatedEntries counts entries with a saturated counter.
	SaturatedEntries int
}

// Stats returns a per-table occupancy snapshot — observability for
// capacity analysis (which tables hold established state, how much of it
// is protected, how much has saturated).
func (p *Predictor) Stats() []TableStats {
	out := make([]TableStats, p.numTables)
	rows := 1 << p.taggedLog
	for i := 0; i < p.numTables; i++ {
		s := TableStats{HistLen: p.histLens[i]}
		lo := i * rows
		for j := lo; j < lo+rows; j++ {
			e := p.entries[j]
			ctr := entryCtr(e)
			if !counter.WeakSigned(ctr) {
				s.LiveEntries++
			}
			if entryU(e) > 0 {
				s.UsefulEntries++
			}
			if counter.SaturatedSigned(ctr, p.cfg.CtrBits) {
				s.SaturatedEntries++
			}
		}
		out[i] = s
	}
	return out
}
