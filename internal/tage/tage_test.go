package tage

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runOn drives a predictor over a trace, returning (mispredictions,
// branches, instructions).
func runOn(p *Predictor, tr trace.Trace, limit uint64) (miss, branches, instr uint64) {
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if err != nil {
			return
		}
		obs := p.Predict(b.PC)
		if obs.Pred != b.Taken {
			miss++
		}
		p.Update(b.PC, b.Taken)
		branches++
		instr += uint64(b.Instr)
	}
}

func mpki(miss, instr uint64) float64 {
	return 1000 * float64(miss) / float64(instr)
}

func TestStorageBudgetsExact(t *testing.T) {
	cases := []struct {
		cfg  Config
		bits int
	}{
		{Small16K(), 16 * 1024},
		{Medium64K(), 64 * 1024},
		{Large256K(), 256 * 1024},
	}
	for _, c := range cases {
		if got := c.cfg.StorageBits(); got != c.bits {
			t.Errorf("%s: storage = %d bits, want %d", c.cfg.Name, got, c.bits)
		}
	}
}

func TestPaperTableCounts(t *testing.T) {
	if got := Small16K().NumTables(); got != 4 {
		t.Errorf("16K tagged tables = %d, want 4", got)
	}
	if got := Medium64K().NumTables(); got != 7 {
		t.Errorf("64K tagged tables = %d, want 7", got)
	}
	if got := Large256K().NumTables(); got != 8 {
		t.Errorf("256K tagged tables = %d, want 8", got)
	}
}

func TestPaperHistoryBounds(t *testing.T) {
	cases := []struct {
		cfg      Config
		min, max int
	}{
		{Small16K(), 3, 80},
		{Medium64K(), 5, 130},
		{Large256K(), 5, 300},
	}
	for _, c := range cases {
		ls := c.cfg.HistLengths
		if ls[0] != c.min || ls[len(ls)-1] != c.max {
			t.Errorf("%s history %v, want %d..%d", c.cfg.Name, ls, c.min, c.max)
		}
	}
}

func TestConfigByName(t *testing.T) {
	for _, n := range []string{"16K", "64K", "256K", "16Kbits", "small", "medium", "large"} {
		if _, err := ConfigByName(n); err != nil {
			t.Errorf("ConfigByName(%q): %v", n, err)
		}
	}
	if _, err := ConfigByName("512K"); err == nil {
		t.Error("unknown config should error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{BimodalLog: 10},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 9},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 9, HistLengths: []int{5, 5}},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 9, HistLengths: []int{0, 5}},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 1, HistLengths: []int{3, 9}},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 9, HistLengths: []int{3, 9}, CtrBits: 1},
		{BimodalLog: 10, TaggedLog: 8, TagBits: 9, HistLengths: []int{3, 9}, UBits: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	for _, c := range StandardConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s rejected: %v", c.Name, err)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config must panic")
		}
	}()
	New(Config{})
}

func TestUpdateWithoutPredictPanics(t *testing.T) {
	p := New(Small16K())
	defer func() {
		if recover() == nil {
			t.Fatal("Update without Predict must panic")
		}
	}()
	p.Update(0x100, true)
}

func TestUpdateWrongPCPanics(t *testing.T) {
	p := New(Small16K())
	p.Predict(0x100)
	defer func() {
		if recover() == nil {
			t.Fatal("Update with mismatched pc must panic")
		}
	}()
	p.Update(0x104, true)
}

func TestDeterminism(t *testing.T) {
	tr := workload.CBP1()[1]
	a := New(Small16K())
	b := New(Small16K())
	ma, na, _ := runOn(a, tr, 20000)
	mb, nb, _ := runOn(b, tr, 20000)
	if ma != mb || na != nb {
		t.Fatalf("two identical runs diverged: %d/%d vs %d/%d", ma, na, mb, nb)
	}
}

func TestLearnsLoopExit(t *testing.T) {
	// A trip-12 loop: bimodal mispredicts every exit (1/12 ≈ 8.3%); TAGE
	// with history ≥ 12 should reach near-zero after warmup.
	prog := workload.NewBuilder("loop", 21).SetLength(40000).
		Block(1, 1, 1, workload.S(workload.Loop{Trip: 12})).
		MustBuild()
	p := New(Small16K())
	r := prog.Open()
	miss, n := 0, 0
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		obs := p.Predict(b.PC)
		if n > 10000 && obs.Pred != b.Taken {
			miss++
		}
		p.Update(b.PC, b.Taken)
		n++
	}
	rate := float64(miss) / float64(n-10000)
	if rate > 0.01 {
		t.Fatalf("TAGE miss rate %.4f on trip-12 loop, want ~0", rate)
	}
}

func TestLearnsLongPatternBeyondBimodal(t *testing.T) {
	bits := make([]bool, 24)
	for i := range bits {
		bits[i] = i%5 < 2 || i == 17
	}
	prog := workload.NewBuilder("pat", 22).SetLength(60000).
		Block(1, 1, 1, workload.S(workload.Pattern{Bits: bits})).
		MustBuild()
	p := New(Medium64K())
	r := prog.Open()
	miss, n := 0, 0
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		obs := p.Predict(b.PC)
		if n > 20000 && obs.Pred != b.Taken {
			miss++
		}
		p.Update(b.PC, b.Taken)
		n++
	}
	rate := float64(miss) / float64(n-20000)
	if rate > 0.02 {
		t.Fatalf("TAGE miss rate %.4f on period-24 pattern, want ~0", rate)
	}
}

func TestBeatsBimodalOnSuite(t *testing.T) {
	// TAGE 16K must clearly beat a standalone bimodal of the same budget on
	// a pattern-heavy trace.
	tr := workload.CBP1()[0] // FP-1
	p := New(Small16K())
	missT, _, instr := runOn(p, tr, 60000)

	// 16 Kbit worth of bimodal: 8192 entries.
	bim := newBimOnly()
	r := trace.Limit(tr, 60000).Open()
	var missB, instrB uint64
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		if bim.Predict(b.PC) != b.Taken {
			missB++
		}
		bim.Update(b.PC, b.Taken)
		instrB += uint64(b.Instr)
	}
	tageMPKI := mpki(missT, instr)
	bimMPKI := mpki(missB, instrB)
	if tageMPKI > bimMPKI*0.75 {
		t.Fatalf("TAGE %.2f MPKI vs bimodal %.2f MPKI: expected a clear win", tageMPKI, bimMPKI)
	}
}

// newBimOnly builds a pure bimodal predictor with a 16 Kbit budget via the
// bimodal package, wrapped locally to avoid an import cycle in tests.
type bimOnly struct {
	t []counter.Bimodal
}

func newBimOnly() *bimOnly {
	return &bimOnly{t: make([]counter.Bimodal, 8192)}
}

func (b *bimOnly) Predict(pc uint64) bool {
	return b.t[(pc>>2)&8191].Taken()
}

func (b *bimOnly) Update(pc uint64, taken bool) {
	i := (pc >> 2) & 8191
	b.t[i] = b.t[i].Update(taken)
}

func TestSizeOrderingOnCapacityStress(t *testing.T) {
	// On a capacity-stressing trace, bigger predictors must not lose:
	// 256K <= 64K <= 16K misprediction counts (within slack).
	tr := workload.CBP2()[3] // 181.mcf: long histories, large footprint
	var rates []float64
	for _, cfg := range StandardConfigs() {
		p := New(cfg)
		miss, _, instr := runOn(p, tr, 120000)
		rates = append(rates, mpki(miss, instr))
	}
	if rates[1] > rates[0]*1.1 {
		t.Errorf("64K (%.2f MPKI) much worse than 16K (%.2f)", rates[1], rates[0])
	}
	if rates[2] > rates[1]*1.1 {
		t.Errorf("256K (%.2f MPKI) much worse than 64K (%.2f)", rates[2], rates[1])
	}
	if rates[2] >= rates[0] {
		t.Errorf("256K (%.2f MPKI) should beat 16K (%.2f) on capacity stress", rates[2], rates[0])
	}
}

func TestObservationConsistency(t *testing.T) {
	tr := workload.CBP1()[6] // INT-2
	p := New(Small16K())
	r := trace.Limit(tr, 30000).Open()
	sawTagged, sawBim, sawUsedAlt := false, false, false
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		obs := p.Predict(b.PC)
		if obs.PC != b.PC {
			t.Fatal("observation PC mismatch")
		}
		if obs.Tagged() {
			sawTagged = true
			if obs.Provider < 0 || obs.Provider >= p.Config().NumTables() {
				t.Fatalf("provider index %d out of range", obs.Provider)
			}
			s := obs.Strength()
			if s < 1 || s > 7 || s%2 == 0 {
				t.Fatalf("tagged strength %d invalid", s)
			}
			if !obs.UsedAlt {
				if obs.Pred != counter.TakenSigned(obs.ProviderCtr) {
					t.Fatal("prediction disagrees with provider counter")
				}
			}
		} else {
			sawBim = true
			if obs.Strength() != 0 {
				t.Fatal("bimodal provider must have strength 0")
			}
			if obs.Pred != obs.BimCtr.Taken() {
				t.Fatal("bimodal prediction disagrees with counter")
			}
			if obs.Pred != obs.AltPred {
				t.Fatal("with no tagged hit, altpred equals the base prediction")
			}
		}
		if obs.UsedAlt {
			sawUsedAlt = true
			if !obs.Tagged() {
				t.Fatal("UsedAlt requires a tagged provider")
			}
			if !counter.WeakSigned(obs.ProviderCtr) {
				t.Fatal("UsedAlt requires a weak provider counter")
			}
		}
		p.Update(b.PC, b.Taken)
	}
	if !sawTagged || !sawBim {
		t.Fatalf("degenerate run: tagged=%v bim=%v", sawTagged, sawBim)
	}
	_ = sawUsedAlt // UsedAlt needs USE_ALT_ON_NA >= 0 and weak providers; not guaranteed
}

func TestWeakTaggedPredictionsAreUnreliable(t *testing.T) {
	// The paper (§5.2): Wtag-class predictions mispredict at ~30-40%.
	tr := workload.CBP1()[7] // INT-3
	p := New(Small16K())
	r := trace.Limit(tr, 150000).Open()
	var weakMiss, weakTot, strongMiss, strongTot int
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		obs := p.Predict(b.PC)
		if obs.Tagged() {
			if obs.Strength() == 1 {
				weakTot++
				if obs.Pred != b.Taken {
					weakMiss++
				}
			} else if obs.Strength() == 7 {
				strongTot++
				if obs.Pred != b.Taken {
					strongMiss++
				}
			}
		}
		p.Update(b.PC, b.Taken)
	}
	if weakTot < 100 || strongTot < 100 {
		t.Fatalf("not enough samples: weak=%d strong=%d", weakTot, strongTot)
	}
	weakRate := float64(weakMiss) / float64(weakTot)
	strongRate := float64(strongMiss) / float64(strongTot)
	if weakRate < 0.15 {
		t.Errorf("weak tagged miss rate %.3f suspiciously low (paper: ~0.3+)", weakRate)
	}
	if weakRate <= 2*strongRate {
		t.Errorf("weak (%.3f) should be far worse than saturated (%.3f)", weakRate, strongRate)
	}
}

func TestAllocationOnlyOnMisprediction(t *testing.T) {
	// A never-mispredicted branch must stay with the bimodal provider.
	// (The PC is chosen so its partial tag is non-zero: like the reference
	// simulator, cold all-zero tables produce false hits for branches whose
	// computed tag happens to be 0.)
	p := New(Small16K())
	pc := uint64(0x400804)
	for i := 0; i < 1000; i++ {
		obs := p.Predict(pc)
		if i > 10 && obs.Tagged() {
			t.Fatal("tagged entry allocated without any misprediction")
		}
		p.Update(pc, false) // cold bimodal predicts not-taken: always correct
	}
}

func TestUResetAges(t *testing.T) {
	cfg := Small16K()
	cfg.UResetPeriod = 64 // tiny period for the test
	p := New(cfg)
	// Drive some branches to set u bits, then verify the periodic shift
	// eventually clears them.
	tr := workload.CBP1()[5]
	r := trace.Limit(tr, 2000).Open()
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		p.Predict(b.PC)
		p.Update(b.PC, b.Taken)
	}
	// After the run, u values must be within the 2-bit range.
	for _, e := range p.entries {
		if u := entryU(e); u > 3 {
			t.Fatalf("u counter %d escaped 2-bit range", u)
		}
	}
}

func TestProbabilisticAutomatonAccuracyCost(t *testing.T) {
	// Paper §6: the modified automaton costs < 0.02 misp/KI on average.
	// Allow a loose bound on a single trace.
	tr := workload.CBP1()[0]
	std := New(Medium64K())
	stdMiss, _, instr := runOn(std, tr, 100000)

	cfg := Medium64K()
	mod := NewWithAutomaton(cfg, counter.NewProbabilistic(cfg.Seed, counter.DefaultDenomLog))
	modMiss, _, _ := runOn(mod, tr, 100000)

	stdMPKI := mpki(stdMiss, instr)
	modMPKI := mpki(modMiss, instr)
	if modMPKI > stdMPKI+0.35 {
		t.Fatalf("modified automaton cost too high: %.3f vs %.3f MPKI", modMPKI, stdMPKI)
	}
}

func TestFourBitCounterConfig(t *testing.T) {
	cfg := Small16K()
	cfg.CtrBits = 4
	p := New(cfg)
	tr := workload.CBP1()[2]
	miss, n, _ := runOn(p, tr, 30000)
	if n == 0 || miss == 0 || miss > n/2 {
		t.Fatalf("4-bit counter run degenerate: %d/%d", miss, n)
	}
}

func TestUseAltOnNAWithinRange(t *testing.T) {
	p := New(Small16K())
	tr := workload.CBP1()[8]
	runOn(p, tr, 50000)
	if v := p.UseAltOnNA(); v < -8 || v > 7 {
		t.Fatalf("USE_ALT_ON_NA = %d escaped 4-bit range", v)
	}
}

func TestTaggedEntries(t *testing.T) {
	if got := New(Small16K()).TaggedEntries(); got != 256 {
		t.Fatalf("16K tagged entries = %d, want 256", got)
	}
	if got := New(Large256K()).TaggedEntries(); got != 2048 {
		t.Fatalf("256K tagged entries = %d, want 2048", got)
	}
}

func BenchmarkPredictUpdate16K(b *testing.B) {
	benchConfig(b, Small16K())
}

func BenchmarkPredictUpdate64K(b *testing.B) {
	benchConfig(b, Medium64K())
}

func BenchmarkPredictUpdate256K(b *testing.B) {
	benchConfig(b, Large256K())
}

func benchConfig(b *testing.B, cfg Config) {
	p := New(cfg)
	tr := workload.CBP1()[6]
	r := tr.Open()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := r.Next()
		if err != nil {
			r = tr.Open()
			br, _ = r.Next()
		}
		p.Predict(br.PC)
		p.Update(br.PC, br.Taken)
	}
}
