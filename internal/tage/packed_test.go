package tage

import (
	"testing"
	"testing/quick"

	"repro/internal/bimodal"
	"repro/internal/counter"
	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestEntryFieldRoundTrip exhausts the packed-entry accessors over the
// full cross product of the extreme field widths Config.Validate admits:
// 16-bit tags, 6-bit two's-complement prediction counters (the widest
// CtrBits, saturating at -32 and 31) and 4-bit useful counters. Every
// combination must round-trip exactly, and every setter must leave the
// other two fields untouched.
func TestEntryFieldRoundTrip(t *testing.T) {
	tags := []uint16{0, 1, 0x5555, 0xAAAA, 1<<16 - 1}
	for _, tag := range tags {
		for ctr := int(counter.SignedMin(entryCtrBits)); ctr <= int(counter.SignedMax(entryCtrBits)); ctr++ {
			for u := 0; u < 1<<entryUBits; u++ {
				e := packEntry(tag, int8(ctr), uint8(u))
				if got := entryTag(e); got != tag {
					t.Fatalf("tag %#x ctr %d u %d: tag round-trip %#x", tag, ctr, u, got)
				}
				if got := entryCtr(e); got != int8(ctr) {
					t.Fatalf("tag %#x ctr %d u %d: ctr round-trip %d", tag, ctr, u, got)
				}
				if got := entryU(e); got != uint8(u) {
					t.Fatalf("tag %#x ctr %d u %d: u round-trip %d", tag, ctr, u, got)
				}

				// Setters must be surgical: replace one field, keep the rest.
				for c2 := int(counter.SignedMin(entryCtrBits)); c2 <= int(counter.SignedMax(entryCtrBits)); c2 += 9 {
					e2 := entrySetCtr(e, int8(c2))
					if entryCtr(e2) != int8(c2) || entryTag(e2) != tag || entryU(e2) != uint8(u) {
						t.Fatalf("entrySetCtr(%d) disturbed neighbors: %#x -> %#x", c2, e, e2)
					}
				}
				for u2 := 0; u2 < 1<<entryUBits; u2 += 3 {
					e2 := entrySetU(e, uint8(u2))
					if entryU(e2) != uint8(u2) || entryTag(e2) != tag || entryCtr(e2) != int8(ctr) {
						t.Fatalf("entrySetU(%d) disturbed neighbors: %#x -> %#x", u2, e, e2)
					}
				}

				// Aging is u >>= 1 and nothing else — in particular the top u
				// bit must not leak into ctr, nor ctr's top bit into u.
				aged := entryAgeU(e)
				if entryU(aged) != uint8(u)>>1 || entryTag(aged) != tag || entryCtr(aged) != int8(ctr) {
					t.Fatalf("entryAgeU broke fields: %#x -> %#x (tag %#x ctr %d u %d)", e, aged, tag, ctr, u)
				}
			}
		}
	}
}

// TestEntryCtrSaturationBothDirections drives the packed counter through
// the standard automaton at the maximum width: repeated taken updates
// must saturate at SignedMax(6)=31 and stay there, repeated not-taken at
// SignedMin(6)=-32, with every intermediate value surviving the
// pack/unpack round trip.
func TestEntryCtrSaturationBothDirections(t *testing.T) {
	const bits = entryCtrBits
	e := packEntry(0x1F2F, 0, 0xF)
	for i := 0; i < 100; i++ {
		e = entrySetCtr(e, counter.UpdateSigned(entryCtr(e), bits, true))
		if c := entryCtr(e); c > counter.SignedMax(bits) {
			t.Fatalf("ctr %d escaped positive saturation", c)
		}
	}
	if c := entryCtr(e); c != counter.SignedMax(bits) {
		t.Fatalf("ctr saturated at %d, want %d", c, counter.SignedMax(bits))
	}
	for i := 0; i < 100; i++ {
		e = entrySetCtr(e, counter.UpdateSigned(entryCtr(e), bits, false))
		if c := entryCtr(e); c < counter.SignedMin(bits) {
			t.Fatalf("ctr %d escaped negative saturation", c)
		}
	}
	if c := entryCtr(e); c != counter.SignedMin(bits) {
		t.Fatalf("ctr saturated at %d, want %d", c, counter.SignedMin(bits))
	}
	if entryTag(e) != 0x1F2F || entryU(e) != 0xF {
		t.Fatal("saturation walk disturbed tag/u fields")
	}
}

// TestEntryQuickRoundTrip property-checks the accessors over random
// field values (masked into range), complementing the exhaustive
// extreme-width walk above.
func TestEntryQuickRoundTrip(t *testing.T) {
	f := func(tag uint16, rawCtr int8, rawU uint8) bool {
		ctr := rawCtr % (counter.SignedMax(entryCtrBits) + 1)
		u := rawU & (1<<entryUBits - 1)
		e := packEntry(tag, ctr, u)
		return entryTag(e) == tag && entryCtr(e) == ctr && entryU(e) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// soaPredictor is the pre-packing reference implementation: the same
// TAGE algorithm over three structure-of-arrays slices (ctr/tag/u) and a
// byte-per-counter bimodal base. The differential tests drive it in
// lockstep with the packed Predictor; any divergence in any observation
// field on any branch is a packing bug.
type soaPredictor struct {
	cfg  Config
	base *bimodal.Predictor

	ctr []int8
	tag []uint16
	u   []uint8

	numTables int
	taggedLog uint
	rowMask   uint32
	tagMask   uint32

	histLens  []int
	pathSizes []uint

	folds []history.Folded

	ghist *history.Buffer
	phist *history.Path

	useAltOnNA int8

	auto counter.Automaton
	rng  *xrand.Rand

	tick uint64

	lastObs     Observation
	pos         []uint32
	tagc        []uint16
	hitBank     int
	altBank     int
	longestPred bool
	scratch     []int
}

func newSOA(cfg Config, auto counter.Automaton) *soaPredictor {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	maxHist := cfg.HistLengths[len(cfg.HistLengths)-1]
	m := len(cfg.HistLengths)
	rows := 1 << cfg.TaggedLog
	p := &soaPredictor{
		cfg:       cfg,
		base:      bimodal.New(cfg.BimodalLog),
		ctr:       make([]int8, m*rows),
		tag:       make([]uint16, m*rows),
		u:         make([]uint8, m*rows),
		numTables: m,
		taggedLog: cfg.TaggedLog,
		rowMask:   uint32(rows - 1),
		tagMask:   (uint32(1) << cfg.TagBits) - 1,
		histLens:  append([]int(nil), cfg.HistLengths...),
		pathSizes: make([]uint, m),
		folds:     make([]history.Folded, 3*m),
		ghist:     history.NewBuffer(maxHist + 2),
		phist:     history.NewPath(cfg.PathBits),
		auto:      auto,
		rng:       xrand.New(xrand.Mix64(cfg.Seed ^ 0x7A6E)),
		pos:       make([]uint32, m+1),
		tagc:      make([]uint16, m+1),
		scratch:   make([]int, 0, m),
	}
	tagBits := int(cfg.TagBits)
	for i := 0; i < m; i++ {
		hl := cfg.HistLengths[i]
		t2 := tagBits - 1
		if t2 < 1 {
			t2 = 1
		}
		ps := uint(hl)
		if ps > cfg.PathBits {
			ps = cfg.PathBits
		}
		p.pathSizes[i] = ps
		p.folds[3*i] = history.MakeFolded(hl, int(cfg.TaggedLog))
		p.folds[3*i+1] = history.MakeFolded(hl, tagBits)
		p.folds[3*i+2] = history.MakeFolded(hl, t2)
	}
	return p
}

func (p *soaPredictor) pathHash(bank int) uint32 {
	logg := p.taggedLog
	size := p.pathSizes[bank-1]
	a := p.phist.Value() & ((1 << size) - 1)
	mask := p.rowMask
	a1 := a & mask
	a2 := a >> logg
	sh := uint(bank) % logg
	a2 = ((a2 << sh) & mask) + (a2 >> (logg - sh))
	a = a1 ^ a2
	a = ((a << sh) & mask) + (a >> (logg - sh))
	return a & mask
}

func (p *soaPredictor) tableIndex(pc uint64, bank int) uint32 {
	idx := uint32(pc>>2) ^ uint32(pc>>(2+p.taggedLog)) ^ p.folds[3*(bank-1)].Value() ^ p.pathHash(bank)
	return idx & p.rowMask
}

func (p *soaPredictor) tableTag(pc uint64, bank int) uint16 {
	fi := 3 * (bank - 1)
	tag := uint32(pc>>2) ^ p.folds[fi+1].Value() ^ (p.folds[fi+2].Value() << 1)
	return uint16(tag & p.tagMask)
}

func (p *soaPredictor) Predict(pc uint64) Observation {
	m := p.numTables
	logg := p.taggedLog
	p.hitBank, p.altBank = 0, 0
	for bank := 1; bank <= m; bank++ {
		p.pos[bank] = uint32(bank-1)<<logg | p.tableIndex(pc, bank)
		p.tagc[bank] = p.tableTag(pc, bank)
	}
	for bank := m; bank >= 1; bank-- {
		if p.tag[p.pos[bank]] == p.tagc[bank] {
			if p.hitBank == 0 {
				p.hitBank = bank
			} else {
				p.altBank = bank
				break
			}
		}
	}

	obs := Observation{
		PC:          pc,
		Provider:    ProviderBimodal,
		AltProvider: ProviderBimodal,
		BimCtr:      p.base.Counter(pc),
	}
	basePred := obs.BimCtr.Taken()

	if p.hitBank == 0 {
		obs.Pred = basePred
		obs.AltPred = basePred
		p.longestPred = basePred
		p.lastObs = obs
		return obs
	}

	providerPos := p.pos[p.hitBank]
	providerCtr := p.ctr[providerPos]
	p.longestPred = counter.TakenSigned(providerCtr)

	altPred := basePred
	if p.altBank > 0 {
		altCtr := p.ctr[p.pos[p.altBank]]
		altPred = counter.TakenSigned(altCtr)
		obs.AltProvider = p.altBank - 1
		obs.AltCtr = altCtr
	}

	obs.Provider = p.hitBank - 1
	obs.ProviderCtr = providerCtr
	obs.ProviderU = p.u[providerPos]
	obs.AltPred = altPred

	if p.cfg.DisableUseAltOnNA || p.useAltOnNA < 0 || !counter.WeakSigned(providerCtr) {
		obs.Pred = p.longestPred
	} else {
		obs.Pred = altPred
		obs.UsedAlt = obs.Pred != p.longestPred
	}

	p.lastObs = obs
	return obs
}

func (p *soaPredictor) Update(pc uint64, taken bool) {
	obs := p.lastObs
	m := p.numTables
	ctrBits := p.cfg.CtrBits

	if obs.Pred != taken && p.hitBank < m {
		p.allocate(taken)
	}

	if p.hitBank > 0 {
		providerPos := p.pos[p.hitBank]

		if counter.WeakSigned(p.ctr[providerPos]) && p.longestPred != obs.AltPred {
			if obs.AltPred == taken {
				if p.useAltOnNA < 7 {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		}

		if p.u[providerPos] == 0 {
			if p.altBank > 0 {
				altPos := p.pos[p.altBank]
				p.ctr[altPos] = p.auto.Update(p.ctr[altPos], ctrBits, taken)
			} else {
				p.base.Update(pc, taken)
			}
		}

		p.ctr[providerPos] = p.auto.Update(p.ctr[providerPos], ctrBits, taken)

		if p.longestPred != obs.AltPred {
			if p.longestPred == taken {
				p.u[providerPos] = counter.IncUnsigned(p.u[providerPos], p.cfg.UBits)
			} else {
				p.u[providerPos] = counter.DecUnsigned(p.u[providerPos])
			}
		}
	} else {
		p.base.Update(pc, taken)
	}

	p.tick++
	if p.tick&(p.cfg.UResetPeriod-1) == 0 {
		for j := range p.u {
			p.u[j] >>= 1
		}
	}

	p.ghist.Push(taken)
	p.phist.Push(pc)
	for i := range p.folds {
		p.folds[i].Update(p.ghist)
	}
}

func (p *soaPredictor) allocate(taken bool) {
	m := p.numTables
	p.scratch = p.scratch[:0]
	for bank := p.hitBank + 1; bank <= m; bank++ {
		if p.u[p.pos[bank]] == 0 {
			p.scratch = append(p.scratch, bank)
		}
	}
	if len(p.scratch) == 0 {
		for bank := p.hitBank + 1; bank <= m; bank++ {
			pos := p.pos[bank]
			p.u[pos] = counter.DecUnsigned(p.u[pos])
		}
		return
	}
	chosen := p.scratch[len(p.scratch)-1]
	for _, bank := range p.scratch[:len(p.scratch)-1] {
		if p.rng.OneIn(2) {
			chosen = bank
			break
		}
	}
	pos := p.pos[chosen]
	p.tag[pos] = p.tagc[chosen]
	p.u[pos] = 0
	if taken {
		p.ctr[pos] = 0
	} else {
		p.ctr[pos] = -1
	}
}

// diffConfigs are the differential-test configurations: the paper's
// standard sizes plus a widest-fields config exercising every bitfield
// at the maximum width Validate admits (16-bit tags, 6-bit counters,
// 4-bit u).
func diffConfigs() []Config {
	wide := Config{
		Name:        "wide-fields",
		BimodalLog:  9,
		TaggedLog:   7,
		TagBits:     16,
		HistLengths: history.GeometricLengths(4, 64, 4),
		CtrBits:     6,
		UBits:       4,
		Seed:        0x11DE,
	}
	cfgs := append(StandardConfigs(), wide)
	for i := range cfgs {
		// A short aging period makes the graceful u reset fire thousands
		// of times within the differential run (the default 2^18 would
		// never trigger), so the packed aging transform is exercised too.
		cfgs[i].UResetPeriod = 1 << 12
	}
	return cfgs
}

// TestPackedMatchesSOADifferential drives the packed predictor and the
// structure-of-arrays reference in lockstep over a real workload trace
// and over a random branch stream, under both the standard and the
// probabilistic automaton, and requires every Observation field to match
// on every branch: the packed one-word layout must be bit-identical to
// the SoA layout it replaced.
func TestPackedMatchesSOADifferential(t *testing.T) {
	for _, cfg := range diffConfigs() {
		for _, mode := range []string{"standard", "probabilistic"} {
			var autoP, autoS counter.Automaton = counter.Standard{}, counter.Standard{}
			if mode == "probabilistic" {
				// Distinct automaton instances with identical seeds keep the
				// two predictors' random streams in lockstep.
				autoP = counter.NewProbabilistic(cfg.Seed, counter.DefaultDenomLog)
				autoS = counter.NewProbabilistic(cfg.Seed, counter.DefaultDenomLog)
			}
			packed := NewWithAutomaton(cfg, autoP)
			soa := newSOA(cfg, autoS)

			check := func(pc uint64, taken bool, src string, i int) {
				po := packed.Predict(pc)
				so := soa.Predict(pc)
				if po != so {
					t.Fatalf("%s/%s/%s branch %d: packed %+v != soa %+v", cfg.Name, mode, src, i, po, so)
				}
				packed.Update(pc, taken)
				soa.Update(pc, taken)
			}

			tr, err := workload.ByName("INT-3")
			if err != nil {
				t.Fatal(err)
			}
			r := trace.Limit(tr, 30_000).Open()
			i := 0
			for {
				b, err := r.Next()
				if err != nil {
					break
				}
				check(b.PC, b.Taken, "INT-3", i)
				i++
			}

			// Random stream over a small PC set: heavy aliasing and
			// allocation pressure, the regime where a field-packing bug
			// (e.g. u leaking into ctr during aging) would surface.
			rng := xrand.New(cfg.Seed ^ 0xD1FF)
			pcs := make([]uint64, 24)
			for j := range pcs {
				pcs[j] = 0x400000 + uint64(rng.Intn(1<<12))*4
			}
			for j := 0; j < 20_000; j++ {
				check(pcs[rng.Intn(len(pcs))], rng.Bool(), "random", j)
			}

			if packed.UseAltOnNA() != soa.useAltOnNA {
				t.Fatalf("%s/%s: USE_ALT_ON_NA diverged: %d vs %d", cfg.Name, mode, packed.UseAltOnNA(), soa.useAltOnNA)
			}
		}
	}
}
