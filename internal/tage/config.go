package tage

import (
	"fmt"

	"repro/internal/history"
)

// Config describes a TAGE predictor instance. The three paper
// configurations are available from Small16K, Medium64K and Large256K.
type Config struct {
	// Name labels the configuration in reports ("16Kbits", ...).
	Name string

	// BimodalLog is log2 of the base-table entry count (2 bits/entry,
	// unshared hysteresis as in the paper's configurations).
	BimodalLog uint

	// TaggedLog is log2 of the per-tagged-table entry count; the paper's
	// configurations give every tagged table the same number of entries.
	TaggedLog uint

	// TagBits is the partial-tag width of the tagged tables.
	TagBits uint

	// HistLengths are the global-history lengths of the tagged tables,
	// shortest first (a geometric series in the paper).
	HistLengths []int

	// CtrBits is the tagged-table prediction-counter width (3 in the paper;
	// 4 reproduces the §6 widening experiment).
	CtrBits uint

	// UBits is the useful-counter width (2 in the paper).
	UBits uint

	// PathBits is the path-history register width hashed into table
	// indices (16 in the reference TAGE implementations).
	PathBits uint

	// UResetPeriod is the number of updates between graceful u resets
	// (one-bit right shift of every u counter). The reference
	// implementations use 2^18.
	UResetPeriod uint64

	// Seed drives the predictor's internal randomness (entry allocation,
	// and the probabilistic automaton when one is installed).
	Seed uint64

	// DisableUseAltOnNA turns off the USE_ALT_ON_NA heuristic (§3.1): the
	// provider component's counter always supplies the prediction, even
	// when weak. Used by the ablation benches; the paper notes the
	// heuristic "(slightly) improves prediction accuracy".
	DisableUseAltOnNA bool
}

// Default field values applied by (*Config).normalized.
const (
	DefaultCtrBits      = 3
	DefaultUBits        = 2
	DefaultPathBits     = 16
	DefaultUResetPeriod = 1 << 18
)

func (c Config) normalized() Config {
	if c.CtrBits == 0 {
		c.CtrBits = DefaultCtrBits
	}
	if c.UBits == 0 {
		c.UBits = DefaultUBits
	}
	if c.PathBits == 0 {
		c.PathBits = DefaultPathBits
	}
	if c.UResetPeriod == 0 {
		c.UResetPeriod = DefaultUResetPeriod
	}
	return c
}

// Validate checks the configuration for structural sanity.
func (c Config) Validate() error {
	c = c.normalized()
	if c.BimodalLog == 0 || c.BimodalLog > 24 {
		return fmt.Errorf("tage: bad BimodalLog %d", c.BimodalLog)
	}
	if c.TaggedLog == 0 || c.TaggedLog > 24 {
		return fmt.Errorf("tage: bad TaggedLog %d", c.TaggedLog)
	}
	if c.TagBits < 2 || c.TagBits > 16 {
		return fmt.Errorf("tage: bad TagBits %d", c.TagBits)
	}
	if len(c.HistLengths) == 0 {
		return fmt.Errorf("tage: no tagged tables")
	}
	for i, l := range c.HistLengths {
		if l < 1 {
			return fmt.Errorf("tage: history length %d at table %d", l, i)
		}
		if i > 0 && l <= c.HistLengths[i-1] {
			return fmt.Errorf("tage: history lengths not strictly increasing: %v", c.HistLengths)
		}
	}
	if c.CtrBits < 2 || c.CtrBits > 6 {
		return fmt.Errorf("tage: bad CtrBits %d", c.CtrBits)
	}
	if c.UBits < 1 || c.UBits > 4 {
		return fmt.Errorf("tage: bad UBits %d", c.UBits)
	}
	return nil
}

// NumTables returns the number of tagged tables.
func (c Config) NumTables() int { return len(c.HistLengths) }

// StorageBits returns the predictor's total storage budget in bits:
// bimodal entries at 2 bits plus tagged entries at tag+ctr+u bits.
func (c Config) StorageBits() int {
	c = c.normalized()
	bim := 2 * (1 << c.BimodalLog)
	perEntry := int(c.TagBits + c.CtrBits + c.UBits)
	tagged := len(c.HistLengths) * (1 << c.TaggedLog) * perEntry
	return bim + tagged
}

// Small16K is the paper's 16 Kbit configuration: 1+4 tables, history 3..80.
// 1024-entry bimodal (2048 b) + 4 × 256-entry tagged tables with 9-bit tags
// (4 × 256 × 14 b = 14336 b) = 16384 bits exactly.
func Small16K() Config {
	return Config{
		Name:        "16Kbits",
		BimodalLog:  10,
		TaggedLog:   8,
		TagBits:     9,
		HistLengths: history.GeometricLengths(3, 80, 4),
		Seed:        0x16B175,
	}
}

// Medium64K is the paper's 64 Kbit configuration: 1+7 tables, history
// 5..130. 4096-entry bimodal (8192 b) + 7 × 512-entry tagged tables with
// 11-bit tags (7 × 512 × 16 b = 57344 b) = 65536 bits exactly.
func Medium64K() Config {
	return Config{
		Name:        "64Kbits",
		BimodalLog:  12,
		TaggedLog:   9,
		TagBits:     11,
		HistLengths: history.GeometricLengths(5, 130, 7),
		Seed:        0x64B175,
	}
}

// Large256K is the paper's 256 Kbit configuration: 1+8 tables, history
// 5..300. 8192-entry bimodal (16384 b) + 8 × 2048-entry tagged tables with
// 10-bit tags (8 × 2048 × 15 b = 245760 b) = 262144 bits exactly.
func Large256K() Config {
	return Config{
		Name:        "256Kbits",
		BimodalLog:  13,
		TaggedLog:   11,
		TagBits:     10,
		HistLengths: history.GeometricLengths(5, 300, 8),
		Seed:        0x256B175,
	}
}

// StandardConfigs returns the three paper configurations in size order.
func StandardConfigs() []Config {
	return []Config{Small16K(), Medium64K(), Large256K()}
}

// ConfigNames lists the canonical configuration names ConfigByName
// resolves (each also accepts its "...Kbits" and size-word aliases).
func ConfigNames() []string { return []string{"16K", "64K", "256K"} }

// ConfigByName resolves "16K"/"64K"/"256K" (and the full "...Kbits" forms).
func ConfigByName(name string) (Config, error) {
	switch name {
	case "16K", "16Kbits", "small":
		return Small16K(), nil
	case "64K", "64Kbits", "medium":
		return Medium64K(), nil
	case "256K", "256Kbits", "large":
		return Large256K(), nil
	default:
		return Config{}, fmt.Errorf(
			"tage: unknown configuration %q (valid: 16K/16Kbits/small, 64K/64Kbits/medium, 256K/256Kbits/large)", name)
	}
}
