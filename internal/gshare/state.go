// Snapshot codec for gshare: the counter table plus the global-history
// register.
package gshare

import (
	"encoding/binary"
	"fmt"

	"repro/internal/counter"
	"repro/internal/statecodec"
)

// AppendState appends the counter table and history register to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.table)))
	for _, c := range p.table {
		dst = append(dst, byte(c))
	}
	dst = binary.LittleEndian.AppendUint64(dst, p.ghist)
	return dst
}

// RestoreState reads state written by AppendState into p, validating
// the table length against p's configuration.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(p.table)) {
		return fmt.Errorf("%w: gshare table %d entries, want %d", statecodec.ErrCorrupt, n, len(p.table))
	}
	raw := r.Bytes(len(p.table))
	ghist := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	for _, b := range raw {
		if b > byte(counter.BimodalStrongTaken) {
			return fmt.Errorf("%w: gshare counter value %d", statecodec.ErrCorrupt, b)
		}
	}
	for i, b := range raw {
		p.table[i] = counter.Bimodal(b)
	}
	p.ghist = ghist
	return nil
}
