package gshare

import (
	"testing"

	"repro/internal/workload"
)

func TestHistoryShifting(t *testing.T) {
	p := New(10, 8)
	p.Update(0x100, true)
	p.Update(0x104, false)
	p.Update(0x108, true)
	if got := p.History(); got != 0b101 {
		t.Fatalf("history = %b, want 101", got)
	}
}

func TestHistoryDisambiguatesPattern(t *testing.T) {
	// A single branch alternating T/N is impossible for bimodal but trivial
	// for gshare: history odd/even states map to different counters.
	p := New(12, 8)
	pc := uint64(0x400100)
	// Warm up.
	for i := 0; i < 64; i++ {
		p.Update(pc, i%2 == 0)
	}
	miss := 0
	for i := 64; i < 1064; i++ {
		taken := i%2 == 0
		if p.Predict(pc) != taken {
			miss++
		}
		p.Update(pc, taken)
	}
	if miss > 0 {
		t.Fatalf("gshare should learn alternation perfectly, missed %d", miss)
	}
}

func TestHistBitsClamped(t *testing.T) {
	p := New(8, 30)
	if p.histBits != 8 {
		t.Fatalf("histBits = %d, want clamped to 8", p.histBits)
	}
}

func TestPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 0) should panic")
		}
	}()
	New(0, 0)
}

func TestIndexMixesHistory(t *testing.T) {
	p := New(10, 10)
	pc := uint64(0x400100)
	i1 := p.Index(pc)
	p.pushHistory(true)
	i2 := p.Index(pc)
	if i1 == i2 {
		t.Fatal("index should change when history changes")
	}
}

func TestBeatsBimodalOnPattern(t *testing.T) {
	prog := workload.NewBuilder("pat", 9).SetLength(30000).
		Block(1, 1, 1,
			workload.S(workload.Pattern{Bits: []bool{true, true, false, true, false, false}}),
		).
		MustBuild()
	p := New(12, 10)
	r := prog.Open()
	miss, n := 0, 0
	for {
		br, err := r.Next()
		if err != nil {
			break
		}
		if n > 1000 && p.Predict(br.PC) != br.Taken {
			miss++
		}
		p.Update(br.PC, br.Taken)
		n++
	}
	rate := float64(miss) / float64(n-1000)
	if rate > 0.02 {
		t.Fatalf("gshare miss rate %.3f on period-6 pattern, want ~0", rate)
	}
}

func TestCounterMatchesPrediction(t *testing.T) {
	p := New(10, 6)
	pc := uint64(0x800)
	for i := 0; i < 8; i++ {
		if p.Counter(pc).Taken() != p.Predict(pc) {
			t.Fatal("Counter and Predict disagree")
		}
		p.Update(pc, true)
	}
}

func TestStorageBits(t *testing.T) {
	if got := New(11, 11).StorageBits(); got != 4096 {
		t.Fatalf("2^11 gshare = %d bits, want 4096", got)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(14, 12)
	for i := 0; i < b.N; i++ {
		pc := uint64(i*37) & 0x3FFFF
		_ = p.Predict(pc)
		p.Update(pc, i&7 < 5)
	}
}
