// Package gshare implements McFarling's gshare predictor (DEC WRL TN-36,
// 1993): a table of 2-bit counters indexed by the XOR of the branch PC and
// the global branch history.
//
// In this repository gshare is a baseline predictor for accuracy
// comparisons and the substrate under the JRS confidence estimator
// (internal/jrs), which the paper's related-work section contrasts with
// storage-free estimation.
package gshare

import (
	"fmt"

	"repro/internal/counter"
)

// Predictor is a gshare branch predictor.
type Predictor struct {
	table    []counter.Bimodal
	mask     uint64 //repro:derived from logSize at construction
	histBits uint   //repro:derived construction parameter, fixed for the predictor's lifetime
	ghist    uint64
}

// New returns a gshare predictor with 2^logSize entries using histBits bits
// of global history (clamped to logSize, the useful maximum).
func New(logSize, histBits uint) *Predictor {
	if logSize == 0 || logSize > 28 {
		panic(fmt.Sprintf("gshare: unreasonable logSize %d", logSize))
	}
	if histBits > logSize {
		histBits = logSize
	}
	n := 1 << logSize
	t := make([]counter.Bimodal, n)
	for i := range t {
		t[i] = counter.BimodalWeakNotTaken
	}
	return &Predictor{table: t, mask: uint64(n - 1), histBits: histBits}
}

// Index exposes the table index for pc under the current history; the JRS
// estimator uses the same indexing scheme.
//repro:hotpath
func (p *Predictor) Index(pc uint64) uint64 {
	return ((pc >> 2) ^ (p.ghist & ((1 << p.histBits) - 1))) & p.mask
}

// Predict returns the predicted direction for pc.
//repro:hotpath
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.Index(pc)].Taken()
}

// Counter returns the counter backing pc's prediction under the current
// history.
//repro:hotpath
func (p *Predictor) Counter(pc uint64) counter.Bimodal {
	return p.table[p.Index(pc)]
}

// Update trains the indexed counter and shifts the outcome into the global
// history. It must be called with the same pc the prediction was made for,
// before any further Predict calls for subsequent branches.
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.Index(pc)
	p.table[i] = p.table[i].Update(taken)
	p.pushHistory(taken)
}

//repro:hotpath
func (p *Predictor) pushHistory(taken bool) {
	p.ghist <<= 1
	if taken {
		p.ghist |= 1
	}
}

// History returns the low bits of the global history register (for tests).
func (p *Predictor) History() uint64 { return p.ghist & ((1 << p.histBits) - 1) }

// StorageBits returns the table storage in bits (2 per entry).
func (p *Predictor) StorageBits() int { return 2 * len(p.table) }
