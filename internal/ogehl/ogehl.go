// Package ogehl implements the O-GEHL branch predictor (Seznec, "Analysis
// of the O-GEHL branch predictor", ISCA 2005): an optimized GEometric
// History Length predictor that sums signed counters read from several
// tables indexed with geometrically increasing global-history lengths, and
// trains them perceptron-style against a dynamically adapted threshold.
//
// O-GEHL matters to the paper twice: it introduced the geometric history
// length series that TAGE reuses, and its storage-free self-confidence
// estimate — |sum| at or above the update threshold — is the related-work
// baseline the paper quotes in §2.2: about one third of its low-confidence
// predictions are mispredicted (good PVN), but only about half of the
// mispredictions are classified low confidence (limited SPEC).
package ogehl

import (
	"fmt"

	"repro/internal/history"
)

// Config parameterizes an O-GEHL predictor.
type Config struct {
	// NumTables is the number of counter tables (first is PC-indexed).
	NumTables int
	// LogSize is log2 of each table's entry count.
	LogSize uint
	// CtrBits is the counter width (4 bits in the reference design).
	CtrBits uint
	// MinHist/MaxHist bound the geometric history series for tables 1..N-1.
	MinHist, MaxHist int
	// Seed is reserved for configuration hashing (the predictor itself is
	// deterministic and uses no randomness).
	Seed uint64
}

// DefaultConfig is a 64 Kbit-class O-GEHL: 8 tables × 2^11 × 4-bit
// counters, histories 3..200.
func DefaultConfig() Config {
	return Config{
		NumTables: 8,
		LogSize:   11,
		CtrBits:   4,
		MinHist:   3,
		MaxHist:   200,
	}
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.NumTables < 2 || c.NumTables > 16 {
		return fmt.Errorf("ogehl: bad NumTables %d", c.NumTables)
	}
	if c.LogSize == 0 || c.LogSize > 24 {
		return fmt.Errorf("ogehl: bad LogSize %d", c.LogSize)
	}
	if c.CtrBits < 2 || c.CtrBits > 6 {
		return fmt.Errorf("ogehl: bad CtrBits %d", c.CtrBits)
	}
	if c.MinHist < 1 || c.MaxHist < c.MinHist {
		return fmt.Errorf("ogehl: bad history bounds %d..%d", c.MinHist, c.MaxHist)
	}
	return nil
}

// StorageBits returns the table storage in bits.
func (c Config) StorageBits() int {
	return c.NumTables * (1 << c.LogSize) * int(c.CtrBits)
}

// Predictor is an O-GEHL predictor instance. Call Predict then Update for
// each branch in order.
type Predictor struct {
	cfg     Config //repro:derived construction input, immutable
	tables  [][]int8
	lengths []int //repro:derived geometric history lengths fixed by cfg
	ghist   *history.Buffer
	folded  []*history.Folded // nil for table 0

	ctrMax int8
	ctrMin int8

	theta    int32 // update threshold (adapted)
	tc       int32 // threshold adaptation counter
	lastSum  int32    //repro:derived per-prediction scratch; havePred is cleared on restore
	lastIdx  []uint32 //repro:derived per-prediction scratch; havePred is cleared on restore
	havePred bool
	lastPC   uint64 //repro:derived per-prediction scratch; havePred is cleared on restore
}

// tcSaturation is the threshold-counter saturation driving θ adaptation.
const tcSaturation = 63

// New builds a predictor.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.NumTables
	lengths := history.GeometricLengths(cfg.MinHist, cfg.MaxHist, n-1)
	p := &Predictor{
		cfg:     cfg,
		tables:  make([][]int8, n),
		lengths: lengths,
		ghist:   history.NewBuffer(cfg.MaxHist + 2),
		folded:  make([]*history.Folded, n),
		ctrMax:  int8(1<<(cfg.CtrBits-1)) - 1,
		ctrMin:  int8(-1) << (cfg.CtrBits - 1),
		theta:   int32(n), // initial θ ≈ number of tables
		lastIdx: make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		p.tables[i] = make([]int8, 1<<cfg.LogSize)
		if i > 0 {
			p.folded[i] = history.NewFolded(lengths[i-1], int(cfg.LogSize))
		}
	}
	return p
}

// Config returns the configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Theta returns the current update threshold.
func (p *Predictor) Theta() int32 { return p.theta }

//repro:hotpath
func (p *Predictor) index(pc uint64, t int) uint32 {
	mask := (uint32(1) << p.cfg.LogSize) - 1
	if t == 0 {
		return uint32(pc>>2) & mask
	}
	h := p.folded[t].Value()
	return (uint32(pc>>2) ^ uint32(pc>>(2+uint(t))) ^ h ^ uint32(t)*0x9E37) & mask
}

// Predict computes the prediction for pc (sum of the indexed counters,
// taken if non-negative).
//repro:hotpath
func (p *Predictor) Predict(pc uint64) bool {
	sum := int32(len(p.tables)) / 2 // centering term of the reference design
	for t := range p.tables {
		idx := p.index(pc, t)
		p.lastIdx[t] = idx
		sum += int32(p.tables[t][idx])
	}
	p.lastSum = sum
	p.lastPC = pc
	p.havePred = true
	return sum >= 0
}

// LastSum returns the sum computed by the most recent Predict.
//repro:hotpath
func (p *Predictor) LastSum() int32 { return p.lastSum }

// HighConfidence is the storage-free self-confidence estimate of the most
// recent prediction: |sum| at or above the update threshold θ.
//repro:hotpath
func (p *Predictor) HighConfidence() bool {
	s := p.lastSum
	if s < 0 {
		s = -s
	}
	return s >= p.theta
}

// Update trains the predictor with the resolved direction. It must follow
// the Predict call for the same pc.
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool) {
	if !p.havePred || p.lastPC != pc {
		panic(fmt.Sprintf("ogehl: Update(%#x) without matching Predict", pc)) //repro:allow-alloc guard path: protocol violation aborts the run, allocation cost is irrelevant
	}
	p.havePred = false
	pred := p.lastSum >= 0
	mag := p.lastSum
	if mag < 0 {
		mag = -mag
	}

	// Perceptron-style selective training.
	if pred != taken || mag < p.theta {
		for t := range p.tables {
			c := p.tables[t][p.lastIdx[t]]
			if taken {
				if c < p.ctrMax {
					c++
				}
			} else if c > p.ctrMin {
				c--
			}
			p.tables[t][p.lastIdx[t]] = c
		}
	}

	// Threshold adaptation (the reference design's TC counter): a
	// misprediction asks for a larger θ (more training), a correct
	// low-magnitude prediction for a smaller one.
	if pred != taken {
		p.tc++
		if p.tc >= tcSaturation {
			p.tc = 0
			p.theta++
		}
	} else if mag < p.theta {
		p.tc--
		if p.tc <= -tcSaturation {
			p.tc = 0
			if p.theta > 1 {
				p.theta--
			}
		}
	}

	// Advance history.
	p.ghist.Push(taken)
	for t := 1; t < len(p.tables); t++ {
		p.folded[t].Update(p.ghist)
	}
}

// StorageBits returns the predictor's storage cost in bits.
func (p *Predictor) StorageBits() int { return p.cfg.StorageBits() }
