package ogehl

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func runTrace(p *Predictor, tr trace.Trace, limit uint64, skip int) (miss, total int) {
	r := trace.Limit(tr, limit).Open()
	n := 0
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		pred := p.Predict(b.PC)
		if n >= skip && pred != b.Taken {
			miss++
		}
		p.Update(b.PC, b.Taken)
		n++
	}
	return miss, n - skip
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumTables: 1, LogSize: 10, CtrBits: 4, MinHist: 3, MaxHist: 100},
		{NumTables: 8, LogSize: 0, CtrBits: 4, MinHist: 3, MaxHist: 100},
		{NumTables: 8, LogSize: 10, CtrBits: 1, MinHist: 3, MaxHist: 100},
		{NumTables: 8, LogSize: 10, CtrBits: 4, MinHist: 0, MaxHist: 100},
		{NumTables: 8, LogSize: 10, CtrBits: 4, MinHist: 10, MaxHist: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStorageBits(t *testing.T) {
	cfg := DefaultConfig()
	want := 8 * 2048 * 4
	if cfg.StorageBits() != want {
		t.Fatalf("storage = %d, want %d", cfg.StorageBits(), want)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config must panic")
		}
	}()
	New(Config{})
}

func TestUpdateWithoutPredictPanics(t *testing.T) {
	p := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Update without Predict must panic")
		}
	}()
	p.Update(0x100, true)
}

func TestLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	prog := workload.NewBuilder("b", 7).SetLength(20000).
		Block(1, 1, 1, workload.S(workload.Biased{P: 0.95})).
		MustBuild()
	miss, total := runTrace(p, prog, 0, 1000)
	rate := float64(miss) / float64(total)
	if rate > 0.08 {
		t.Fatalf("miss rate %.3f on 0.95-biased branch", rate)
	}
}

func TestLearnsPattern(t *testing.T) {
	p := New(DefaultConfig())
	prog := workload.NewBuilder("pat", 8).SetLength(40000).
		Block(1, 1, 1,
			workload.S(workload.Pattern{Bits: []bool{true, true, false, true, false, false, true, false}}),
		).
		MustBuild()
	miss, total := runTrace(p, prog, 0, 10000)
	rate := float64(miss) / float64(total)
	if rate > 0.05 {
		t.Fatalf("miss rate %.3f on period-8 pattern, want ~0", rate)
	}
}

func TestLearnsLongHistoryLoop(t *testing.T) {
	// A trip-60 loop needs ~60 bits of history: O-GEHL's geometric series
	// (up to 200) must capture it; a bimodal could not.
	p := New(DefaultConfig())
	prog := workload.NewBuilder("loop", 9).SetLength(60000).
		Block(1, 1, 1, workload.S(workload.Loop{Trip: 60})).
		MustBuild()
	miss, total := runTrace(p, prog, 0, 20000)
	rate := float64(miss) / float64(total)
	if rate > 0.004 {
		t.Fatalf("miss rate %.4f on trip-60 loop, want ~0", rate)
	}
}

func TestThetaAdapts(t *testing.T) {
	p := New(DefaultConfig())
	initial := p.Theta()
	tr, _ := workload.ByName("300.twolf") // hard: θ should move
	runTrace(p, tr, 120000, 0)
	if p.Theta() == initial {
		t.Logf("theta unchanged at %d (acceptable but unusual on a hard trace)", initial)
	}
	if p.Theta() < 1 {
		t.Fatalf("theta fell below 1: %d", p.Theta())
	}
}

func TestCountersStayInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CtrBits = 3
	p := New(cfg)
	tr, _ := workload.ByName("INT-1")
	runTrace(p, tr, 50000, 0)
	for ti, tb := range p.tables {
		for _, c := range tb {
			if c > p.ctrMax || c < p.ctrMin {
				t.Fatalf("table %d counter %d out of [%d,%d]", ti, c, p.ctrMin, p.ctrMax)
			}
		}
	}
}

func TestSelfConfidenceSeparates(t *testing.T) {
	// §2.2's characterization: low-confidence predictions mispredict at a
	// much higher rate than high-confidence ones.
	p := New(DefaultConfig())
	tr, _ := workload.ByName("INT-3")
	r := trace.Limit(tr, 150000).Open()
	var hiMiss, hiTot, loMiss, loTot int
	n := 0
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		pred := p.Predict(b.PC)
		if n > 20000 {
			if p.HighConfidence() {
				hiTot++
				if pred != b.Taken {
					hiMiss++
				}
			} else {
				loTot++
				if pred != b.Taken {
					loMiss++
				}
			}
		}
		p.Update(b.PC, b.Taken)
		n++
	}
	if hiTot == 0 || loTot == 0 {
		t.Fatalf("degenerate confidence split hi=%d lo=%d", hiTot, loTot)
	}
	hiRate := float64(hiMiss) / float64(hiTot)
	loRate := float64(loMiss) / float64(loTot)
	if loRate < 3*hiRate {
		t.Fatalf("low-confidence rate %.3f should dwarf high-confidence %.3f", loRate, hiRate)
	}
}

func TestDeterministic(t *testing.T) {
	tr, _ := workload.ByName("MM-3")
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	am, an := runTrace(a, tr, 30000, 0)
	bm, bn := runTrace(b, tr, 30000, 0)
	if am != bm || an != bn {
		t.Fatal("nondeterministic O-GEHL run")
	}
}

func TestCompetitiveAccuracy(t *testing.T) {
	// O-GEHL at 64 Kbit should be in the same accuracy league as TAGE on a
	// mixed trace (the championship-era predictors are close).
	p := New(DefaultConfig())
	tr, _ := workload.ByName("186.crafty")
	miss, total := runTrace(p, tr, 100000, 10000)
	rate := float64(miss) / float64(total)
	if rate > 0.10 {
		t.Fatalf("miss rate %.3f too high for a championship-class predictor", rate)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	tr, _ := workload.ByName("INT-2")
	r := tr.Open()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := r.Next()
		if err != nil {
			r = tr.Open()
			br, _ = r.Next()
		}
		p.Predict(br.PC)
		p.Update(br.PC, br.Taken)
	}
}
