// Snapshot codec for O-GEHL: the counter tables, the adapted threshold
// and its adaptation counter, the global-history buffer and the folded
// per-table compressions. lastSum/lastIdx/lastPC are per-prediction
// scratch, dead at snapshot cut points; RestoreState clears havePred.
package ogehl

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the predictor's mutable state to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.tables)))
	dst = binary.AppendUvarint(dst, uint64(len(p.tables[0])))
	for _, tbl := range p.tables {
		for _, c := range tbl {
			dst = append(dst, byte(c))
		}
	}
	dst = binary.AppendVarint(dst, int64(p.theta))
	dst = binary.AppendVarint(dst, int64(p.tc))
	dst = p.ghist.AppendState(dst)
	for t := 1; t < len(p.folded); t++ {
		dst = binary.AppendUvarint(dst, uint64(p.folded[t].Value()))
	}
	return dst
}

// RestoreState reads state written by AppendState into p, validating
// the recorded geometry and counter ranges against p's configuration.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	nt := r.Uvarint()
	rows := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nt != uint64(len(p.tables)) || rows != uint64(len(p.tables[0])) {
		return fmt.Errorf("%w: ogehl geometry %dx%d, want %dx%d",
			statecodec.ErrCorrupt, nt, rows, len(p.tables), len(p.tables[0]))
	}
	raw := r.Bytes(len(p.tables) * len(p.tables[0]))
	theta := r.Varint()
	tc := r.Varint()
	if err := r.Err(); err != nil {
		return err
	}
	for _, b := range raw {
		if c := int8(b); c < p.ctrMin || c > p.ctrMax {
			return fmt.Errorf("%w: ogehl counter value %d", statecodec.ErrCorrupt, c)
		}
	}
	if err := p.ghist.RestoreState(r); err != nil {
		return err
	}
	folds := make([]uint32, len(p.folded))
	for t := 1; t < len(p.folded); t++ {
		folds[t] = uint32(r.Uvarint())
	}
	if err := r.Err(); err != nil {
		return err
	}
	off := 0
	for _, tbl := range p.tables {
		for i := range tbl {
			tbl[i] = int8(raw[off])
			off++
		}
	}
	p.theta = int32(theta)
	p.tc = int32(tc)
	for t := 1; t < len(p.folded); t++ {
		p.folded[t].SetValue(folds[t])
	}
	p.havePred = false
	return nil
}
