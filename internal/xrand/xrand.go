// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The repository deliberately avoids math/rand in simulation hot paths:
// every source of randomness (the TAGE allocation policy, the probabilistic
// counter automaton, the synthetic workload generators) is an explicitly
// seeded stream so that every experiment is bit-reproducible across runs,
// platforms and Go versions.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny stateless-style mixer, mainly used to derive seeds
//     and to hash integers.
//   - Rand: an xorshift64* stream generator, the workhorse for simulation
//     randomness. In a hardware implementation this role would be played by
//     an LFSR; any reasonable uniform source is behaviorally equivalent.
package xrand

// SplitMix64 advances the given state and returns a well-mixed 64-bit value.
// It implements the splitmix64 algorithm (Steele, Lea, Flood 2014), which is
// the standard way to expand a single seed into multiple independent seeds.
//repro:hotpath
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 hashes a 64-bit value through the splitmix64 finalizer. It is used
// to derive decorrelated per-component seeds from (seed, component-id) pairs.
//repro:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Rand is a deterministic xorshift64* pseudo-random generator.
// The zero value is not valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the all-zero state is a fixed point of
// xorshift.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Derive returns a new generator whose stream is decorrelated from r's,
// keyed by id. It does not disturb r's own stream.
func (r *Rand) Derive(id uint64) *Rand {
	d := &Rand{}
	r.DeriveInto(id, d)
	return d
}

// DeriveInto reseeds dst to the exact stream Derive(id) would return,
// without allocating. It lets callers that recycle generator storage
// (pooled trace readers) re-derive per-component streams in place.
//repro:hotpath
func (r *Rand) DeriveInto(id uint64, dst *Rand) {
	dst.Seed(Mix64(r.state ^ Mix64(id+0x9E3779B97F4A7C15)))
}

// Seed resets the generator state.
//repro:hotpath
func (r *Rand) Seed(seed uint64) {
	s := seed
	// Run the seed through splitmix64 twice so that small consecutive seeds
	// (0, 1, 2, ...) yield well-separated streams.
	v := SplitMix64(&s)
	v ^= SplitMix64(&s)
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	r.state = v
}

// State returns the raw generator state, for snapshot codecs. Restoring
// it with SetState reproduces the stream bit for bit; Seed would not,
// because it mixes the seed before storing it.
//repro:hotpath
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state captured by State. A zero state — never
// produced by a seeded generator, but possible in a corrupt snapshot —
// is remapped to the same non-zero constant Seed uses, because the
// all-zero state is a fixed point of xorshift.
//repro:hotpath
func (r *Rand) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 bits from the stream.
//repro:hotpath
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 bits from the stream.
//repro:hotpath
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
//repro:hotpath
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
//repro:hotpath
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
//repro:hotpath
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// WithProbability returns true with probability p (clamped to [0,1]).
//repro:hotpath
func (r *Rand) WithProbability(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// OneIn returns true with probability 1/n. It panics if n <= 0.
// OneIn(1) always returns true. For power-of-two n this compiles down to a
// mask test, mirroring how cheap the hardware LFSR test would be.
//repro:hotpath
func (r *Rand) OneIn(n int) bool {
	if n <= 0 {
		panic("xrand: OneIn called with n <= 0")
	}
	if n == 1 {
		return true
	}
	if n&(n-1) == 0 {
		return r.Uint64()&uint64(n-1) == 0
	}
	return r.Intn(n) == 0
}
