package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.state == 0 {
		t.Fatal("zero seed must not produce zero state")
	}
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("stream from zero seed looks degenerate")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	// Consecutive small seeds must produce different streams.
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	r := New(7)
	d1 := r.Derive(1)
	d2 := r.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different ids should differ")
	}
	// Deriving must not advance the parent stream.
	r2 := New(7)
	_ = r2.Derive(1)
	a := New(7)
	if got, want := r.Uint64(), a.Uint64(); got != want {
		t.Fatalf("Derive perturbed parent stream: got %x want %x", got, want)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(123)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestOneInStatistics(t *testing.T) {
	r := New(42)
	for _, n := range []int{1, 2, 16, 128, 1024} {
		const trials = 200000
		hits := 0
		for i := 0; i < trials; i++ {
			if r.OneIn(n) {
				hits++
			}
		}
		got := float64(hits) / trials
		want := 1.0 / float64(n)
		// 5 sigma for a binomial.
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 5*sigma+1e-12 {
			t.Errorf("OneIn(%d): rate %v, want %v (±%v)", n, got, want, 5*sigma)
		}
	}
}

func TestOneInNonPowerOfTwo(t *testing.T) {
	r := New(42)
	const trials = 300000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.OneIn(3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-1.0/3) > 0.01 {
		t.Fatalf("OneIn(3): rate %v, want ~0.333", got)
	}
}

func TestOneInOneAlwaysTrue(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if !r.OneIn(1) {
			t.Fatal("OneIn(1) must always be true")
		}
	}
}

func TestWithProbabilityEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.WithProbability(0) {
			t.Fatal("WithProbability(0) returned true")
		}
		if !r.WithProbability(1) {
			t.Fatal("WithProbability(1) returned false")
		}
		if r.WithProbability(-0.5) {
			t.Fatal("negative probability returned true")
		}
		if !r.WithProbability(1.5) {
			t.Fatal("probability > 1 returned false")
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(77)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true fraction = %v, want ~0.5", frac)
	}
}

func TestMix64Injective(t *testing.T) {
	// Mix64 is a bijection on 64-bit values; sample-test for collisions.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 20000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestSplitMix64AdvancesState(t *testing.T) {
	s := uint64(0)
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Fatal("SplitMix64 produced identical consecutive outputs")
	}
	if s == 0 {
		t.Fatal("SplitMix64 did not advance state")
	}
}

func TestQuickUint64NeverSticksAtZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		zeros := 0
		for i := 0; i < 16; i++ {
			if r.Uint64() == 0 {
				zeros++
			}
		}
		return zeros <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkOneIn128(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.OneIn(128) {
			n++
		}
	}
	_ = n
}
