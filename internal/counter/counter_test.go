package counter

import (
	"testing"
	"testing/quick"
)

func TestSignedBounds(t *testing.T) {
	cases := []struct {
		bits     uint
		min, max int8
	}{
		{2, -2, 1},
		{3, -4, 3},
		{4, -8, 7},
		{5, -16, 15},
	}
	for _, c := range cases {
		if got := SignedMin(c.bits); got != c.min {
			t.Errorf("SignedMin(%d) = %d, want %d", c.bits, got, c.min)
		}
		if got := SignedMax(c.bits); got != c.max {
			t.Errorf("SignedMax(%d) = %d, want %d", c.bits, got, c.max)
		}
	}
}

func TestUpdateSignedSaturates(t *testing.T) {
	v := SignedMax(3)
	if got := UpdateSigned(v, 3, true); got != v {
		t.Errorf("increment at max: got %d, want %d", got, v)
	}
	v = SignedMin(3)
	if got := UpdateSigned(v, 3, false); got != v {
		t.Errorf("decrement at min: got %d, want %d", got, v)
	}
}

func TestUpdateSignedStepsByOne(t *testing.T) {
	for v := SignedMin(3); v < SignedMax(3); v++ {
		if got := UpdateSigned(v, 3, true); got != v+1 {
			t.Errorf("UpdateSigned(%d, taken) = %d, want %d", v, got, v+1)
		}
	}
	for v := SignedMax(3); v > SignedMin(3); v-- {
		if got := UpdateSigned(v, 3, false); got != v-1 {
			t.Errorf("UpdateSigned(%d, !taken) = %d, want %d", v, got, v-1)
		}
	}
}

func TestTakenSigned(t *testing.T) {
	for v := int8(-4); v <= 3; v++ {
		want := v >= 0
		if got := TakenSigned(v); got != want {
			t.Errorf("TakenSigned(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestWeakSigned(t *testing.T) {
	for v := int8(-4); v <= 3; v++ {
		want := v == 0 || v == -1
		if got := WeakSigned(v); got != want {
			t.Errorf("WeakSigned(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestStrengthClasses(t *testing.T) {
	// The paper's class boundaries for a 3-bit counter.
	want := map[int8]int{
		-4: 7, 3: 7, // Stag
		-3: 5, 2: 5, // NStag
		-2: 3, 1: 3, // NWtag
		-1: 1, 0: 1, // Wtag
	}
	for v, s := range want {
		if got := Strength(v); got != s {
			t.Errorf("Strength(%d) = %d, want %d", v, got, s)
		}
	}
}

func TestSaturationPredicates(t *testing.T) {
	for v := int8(-4); v <= 3; v++ {
		wantSat := v == -4 || v == 3
		wantNear := v == -3 || v == 2
		if got := SaturatedSigned(v, 3); got != wantSat {
			t.Errorf("SaturatedSigned(%d) = %v, want %v", v, got, wantSat)
		}
		if got := NearlySaturatedSigned(v, 3); got != wantNear {
			t.Errorf("NearlySaturatedSigned(%d) = %v, want %v", v, got, wantNear)
		}
	}
}

func TestUnsignedSaturation(t *testing.T) {
	v := uint8(0)
	for i := 0; i < 10; i++ {
		v = IncUnsigned(v, 2)
	}
	if v != 3 {
		t.Errorf("2-bit unsigned after 10 increments = %d, want 3", v)
	}
	for i := 0; i < 10; i++ {
		v = DecUnsigned(v)
	}
	if v != 0 {
		t.Errorf("after 10 decrements = %d, want 0", v)
	}
}

func TestBimodalTransitions(t *testing.T) {
	b := BimodalWeakNotTaken
	b = b.Update(true)
	if b != BimodalWeakTaken {
		t.Fatalf("1 -> taken should be 2, got %d", b)
	}
	b = b.Update(true)
	if b != BimodalStrongTaken {
		t.Fatalf("2 -> taken should be 3, got %d", b)
	}
	b = b.Update(true)
	if b != BimodalStrongTaken {
		t.Fatalf("3 must saturate, got %d", b)
	}
	b = b.Update(false).Update(false).Update(false).Update(false)
	if b != BimodalStrongNotTaken {
		t.Fatalf("repeated not-taken must reach 0, got %d", b)
	}
}

func TestBimodalPredicatesExhaustive(t *testing.T) {
	if BimodalStrongNotTaken.Taken() || BimodalWeakNotTaken.Taken() {
		t.Error("0/1 must predict not-taken")
	}
	if !BimodalWeakTaken.Taken() || !BimodalStrongTaken.Taken() {
		t.Error("2/3 must predict taken")
	}
	if BimodalStrongNotTaken.Weak() || BimodalStrongTaken.Weak() {
		t.Error("0/3 are strong states")
	}
	if !BimodalWeakNotTaken.Weak() || !BimodalWeakTaken.Weak() {
		t.Error("1/2 are weak states")
	}
}

func TestStandardAutomatonMatchesPureFunction(t *testing.T) {
	var a Standard
	for v := int8(-4); v <= 3; v++ {
		for _, taken := range []bool{true, false} {
			if got, want := a.Update(v, 3, taken), UpdateSigned(v, 3, taken); got != want {
				t.Errorf("Standard.Update(%d, %v) = %d, want %d", v, taken, got, want)
			}
		}
	}
}

func TestProbabilisticNonSaturatingTransitionsUnchanged(t *testing.T) {
	p := NewProbabilistic(1, 7)
	for v := int8(-4); v <= 3; v++ {
		for _, taken := range []bool{true, false} {
			// The only throttled transitions are 2->3 on taken and -3->-4 on
			// not-taken. Everything else must match the standard automaton.
			if (v == 2 && taken) || (v == -3 && !taken) {
				continue
			}
			if got, want := p.Update(v, 3, taken), UpdateSigned(v, 3, taken); got != want {
				t.Errorf("Probabilistic.Update(%d, %v) = %d, want %d", v, taken, got, want)
			}
		}
	}
}

func TestProbabilisticThrottlesSaturation(t *testing.T) {
	p := NewProbabilistic(42, 7) // probability 1/128
	const trials = 128 * 1000
	saturations := 0
	for i := 0; i < trials; i++ {
		if p.Update(2, 3, true) == 3 {
			saturations++
		}
	}
	rate := float64(saturations) / trials
	want := 1.0 / 128
	if rate < want/2 || rate > want*2 {
		t.Errorf("positive saturation rate = %v, want ~%v", rate, want)
	}
	saturations = 0
	for i := 0; i < trials; i++ {
		if p.Update(-3, 3, false) == -4 {
			saturations++
		}
	}
	rate = float64(saturations) / trials
	if rate < want/2 || rate > want*2 {
		t.Errorf("negative saturation rate = %v, want ~%v", rate, want)
	}
}

func TestProbabilisticDenomLogZeroIsStandard(t *testing.T) {
	p := NewProbabilistic(3, 0)
	for i := 0; i < 100; i++ {
		if got := p.Update(2, 3, true); got != 3 {
			t.Fatalf("with probability 1, 2->3 must always happen; got %d", got)
		}
		if got := p.Update(-3, 3, false); got != -4 {
			t.Fatalf("with probability 1, -3->-4 must always happen; got %d", got)
		}
	}
}

func TestProbabilisticClampsDenomLog(t *testing.T) {
	p := NewProbabilistic(1, 99)
	if p.DenomLog() != MaxDenomLog {
		t.Fatalf("constructor clamp: got %d, want %d", p.DenomLog(), MaxDenomLog)
	}
	p.SetDenomLog(50)
	if p.DenomLog() != MaxDenomLog {
		t.Fatalf("SetDenomLog clamp: got %d, want %d", p.DenomLog(), MaxDenomLog)
	}
	p.SetDenomLog(3)
	if p.Probability() != 1.0/8 {
		t.Fatalf("Probability() = %v, want 1/8", p.Probability())
	}
}

func TestProbabilisticWrongDirectionNeverSaturates(t *testing.T) {
	// A counter at 2 observing not-taken must decrement, never jump to 3.
	p := NewProbabilistic(5, 7)
	for i := 0; i < 100; i++ {
		if got := p.Update(2, 3, false); got != 1 {
			t.Fatalf("Update(2, !taken) = %d, want 1", got)
		}
		if got := p.Update(-3, 3, true); got != -2 {
			t.Fatalf("Update(-3, taken) = %d, want -2", got)
		}
	}
}

func TestQuickSignedStaysInRange(t *testing.T) {
	f := func(start int8, takens []bool) bool {
		v := start
		if v < SignedMin(3) {
			v = SignedMin(3)
		}
		if v > SignedMax(3) {
			v = SignedMax(3)
		}
		for _, tk := range takens {
			v = UpdateSigned(v, 3, tk)
			if v < SignedMin(3) || v > SignedMax(3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProbabilisticStaysInRange(t *testing.T) {
	f := func(seed uint64, takens []bool) bool {
		p := NewProbabilistic(seed, 7)
		v := int8(0)
		for _, tk := range takens {
			v = p.Update(v, 3, tk)
			if v < SignedMin(3) || v > SignedMax(3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBimodalStaysInRange(t *testing.T) {
	f := func(takens []bool) bool {
		b := BimodalWeakNotTaken
		for _, tk := range takens {
			b = b.Update(tk)
			if b > BimodalStrongTaken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStrengthIsOdd(t *testing.T) {
	f := func(raw int8) bool {
		v := raw
		if v < SignedMin(3) || v > SignedMax(3) {
			v = 0
		}
		s := Strength(v)
		return s%2 == 1 && s >= 1 && s <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFourBitStrengthRange(t *testing.T) {
	// The paper's §6 discusses widening to 4 bits; Strength must extend.
	if got := Strength(SignedMax(4)); got != 15 {
		t.Errorf("Strength(max4) = %d, want 15", got)
	}
	if got := Strength(SignedMin(4)); got != 15 {
		t.Errorf("Strength(min4) = %d, want 15", got)
	}
}

func BenchmarkStandardUpdate(b *testing.B) {
	var a Standard
	v := int8(0)
	for i := 0; i < b.N; i++ {
		v = a.Update(v, 3, i&3 == 0)
	}
	_ = v
}

func BenchmarkProbabilisticUpdate(b *testing.B) {
	p := NewProbabilistic(1, 7)
	v := int8(0)
	for i := 0; i < b.N; i++ {
		v = p.Update(v, 3, i&3 != 0)
	}
	_ = v
}
