// Package counter implements the saturating counters used by the branch
// predictors in this repository, together with the prediction-counter update
// automatons studied in the paper.
//
// Three families of state live here:
//
//   - signed saturating counters (the TAGE tagged-table "ctr" field, the
//     USE_ALT_ON_NA counter, perceptron-adjacent bias counters);
//   - unsigned saturating counters (the TAGE "u" useful field, JRS
//     confidence counters);
//   - the 2-bit bimodal counter of Smith's predictor (the TAGE base table).
//
// The paper's §6 contribution — slowing down the transition into the
// saturated state so that saturation implies high confidence — is
// implemented by Probabilistic, a drop-in replacement for the Standard
// update automaton.
package counter

import "repro/internal/xrand"

// SignedMin returns the minimum value of a signed saturating counter of the
// given width in bits. A 3-bit counter spans [-4, 3].
//repro:hotpath
func SignedMin(bits uint) int8 {
	return int8(-1) << (bits - 1)
}

// SignedMax returns the maximum value of a signed saturating counter of the
// given width in bits.
//repro:hotpath
func SignedMax(bits uint) int8 {
	return int8(1<<(bits-1)) - 1
}

// UpdateSigned moves a signed saturating counter of the given width one step
// toward taken (increment) or not-taken (decrement), saturating at the
// bounds. It is the "Standard" automaton as a pure function.
//repro:hotpath
func UpdateSigned(v int8, bits uint, taken bool) int8 {
	if taken {
		if v < SignedMax(bits) {
			return v + 1
		}
		return v
	}
	if v > SignedMin(bits) {
		return v - 1
	}
	return v
}

// TakenSigned reports the prediction encoded by a signed counter:
// taken if and only if the counter is non-negative.
//repro:hotpath
func TakenSigned(v int8) bool { return v >= 0 }

// WeakSigned reports whether a signed counter is in one of its two weak
// states (0 or -1), i.e. whether the prediction has minimal strength.
//repro:hotpath
func WeakSigned(v int8) bool { return v == 0 || v == -1 }

// Strength returns |2v+1|, the symmetric magnitude of a signed prediction
// counter used by the paper to grade tagged-table predictions:
// 1 = weak (Wtag), 3 = nearly weak (NWtag), 5 = nearly saturated (NStag),
// 7 = saturated (Stag) for a 3-bit counter.
//repro:hotpath
func Strength(v int8) int {
	s := int(2*int16(v) + 1)
	if s < 0 {
		return -s
	}
	return s
}

// SaturatedSigned reports whether the counter sits at either bound.
//repro:hotpath
func SaturatedSigned(v int8, bits uint) bool {
	return v == SignedMin(bits) || v == SignedMax(bits)
}

// NearlySaturatedSigned reports whether the counter is one step away from a
// bound (2 or -3 for a 3-bit counter) — the states whose outgoing
// "saturating" transition the paper's modified automaton throttles.
//repro:hotpath
func NearlySaturatedSigned(v int8, bits uint) bool {
	return v == SignedMin(bits)+1 || v == SignedMax(bits)-1
}

// IncUnsigned increments an unsigned saturating counter of the given width.
//repro:hotpath
func IncUnsigned(v uint8, bits uint) uint8 {
	if v < uint8(1<<bits)-1 {
		return v + 1
	}
	return v
}

// DecUnsigned decrements an unsigned saturating counter toward zero.
//repro:hotpath
func DecUnsigned(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

// Bimodal is the classic 2-bit counter of Smith's bimodal predictor, also
// used (with unshared hysteresis, as in the paper's configurations) as the
// TAGE base-table entry. Values span 0..3; 2 and 3 predict taken.
type Bimodal uint8

// BimodalWeaklyNotTaken and friends name the four states.
const (
	BimodalStrongNotTaken Bimodal = 0
	BimodalWeakNotTaken   Bimodal = 1
	BimodalWeakTaken      Bimodal = 2
	BimodalStrongTaken    Bimodal = 3
)

// Taken reports the prediction encoded by the counter.
//repro:hotpath
func (b Bimodal) Taken() bool { return b >= 2 }

// Weak reports whether the counter is in a weak state (1 or 2). The paper's
// low-conf-bim class is exactly the BIM-provided predictions with Weak()
// true.
//repro:hotpath
func (b Bimodal) Weak() bool { return b == BimodalWeakNotTaken || b == BimodalWeakTaken }

// Update moves the counter one step toward the observed outcome.
//repro:hotpath
func (b Bimodal) Update(taken bool) Bimodal {
	if taken {
		if b < BimodalStrongTaken {
			return b + 1
		}
		return b
	}
	if b > BimodalStrongNotTaken {
		return b - 1
	}
	return b
}

// An Automaton is an update policy for the signed prediction counters of the
// TAGE tagged tables. Update returns the counter's next value after
// observing the branch outcome taken.
//
// Standard is the textbook saturating counter. Probabilistic implements the
// paper's §6 modification. Both are deterministic given their seed, so the
// whole simulation is reproducible.
type Automaton interface {
	Update(v int8, bits uint, taken bool) int8
}

// Standard is the unmodified saturating-counter automaton.
type Standard struct{}

// Update implements Automaton.
//repro:hotpath
func (Standard) Update(v int8, bits uint, taken bool) int8 {
	return UpdateSigned(v, bits, taken)
}

// Probabilistic is the paper's modified automaton: on a correct prediction,
// when the counter is nearly saturated (2 or -3 for 3 bits), the transition
// into the saturated state is performed only with probability 2^-DenomLog.
// All other transitions are unchanged. With DenomLog = 7 (probability
// 1/128), a saturated counter implies that no misprediction was provided by
// the entry in the recent past, making the Stag class high confidence.
//
// DenomLog may be changed at run time; the adaptive controller in
// internal/core drives it between 0 (probability 1) and 10 (1/1024).
type Probabilistic struct {
	rng      *xrand.Rand
	denomLog uint
}

// DefaultDenomLog is the paper's main operating point: probability 1/128.
const DefaultDenomLog = 7

// MaxDenomLog bounds the adaptive range at probability 1/1024.
const MaxDenomLog = 10

// NewProbabilistic returns the modified automaton with saturation
// probability 2^-denomLog, drawing randomness from the given seed.
func NewProbabilistic(seed uint64, denomLog uint) *Probabilistic {
	if denomLog > MaxDenomLog {
		denomLog = MaxDenomLog
	}
	return &Probabilistic{rng: xrand.New(seed), denomLog: denomLog}
}

// DenomLog returns the current log2 of the saturation-probability
// denominator (0 => always saturate, 7 => 1/128, 10 => 1/1024).
//repro:hotpath
func (p *Probabilistic) DenomLog() uint { return p.denomLog }

// SetDenomLog sets the saturation probability to 2^-l, clamped to
// [0, MaxDenomLog].
//repro:hotpath
func (p *Probabilistic) SetDenomLog(l uint) {
	if l > MaxDenomLog {
		l = MaxDenomLog
	}
	p.denomLog = l
}

// Rand exposes the automaton's random stream so snapshot codecs can
// capture and restore the exact generator state; the probabilistic
// saturation decisions are part of the predictor's bit-reproducible
// behavior.
func (p *Probabilistic) Rand() *xrand.Rand { return p.rng }

// Probability returns the current saturation probability as a float.
func (p *Probabilistic) Probability() float64 {
	return 1.0 / float64(uint64(1)<<p.denomLog)
}

// Update implements Automaton.
//repro:hotpath
func (p *Probabilistic) Update(v int8, bits uint, taken bool) int8 {
	max := SignedMax(bits)
	min := SignedMin(bits)
	if taken && v == max-1 {
		// Correct taken prediction about to saturate positively.
		if p.denomLog == 0 || p.rng.OneIn(1<<p.denomLog) {
			return max
		}
		return v
	}
	if !taken && v == min+1 {
		// Correct not-taken prediction about to saturate negatively.
		if p.denomLog == 0 || p.rng.OneIn(1<<p.denomLog) {
			return min
		}
		return v
	}
	return UpdateSigned(v, bits, taken)
}
