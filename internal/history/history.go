// Package history implements the branch-history machinery of geometric
// history length predictors: a circular global-history bit buffer, the
// incrementally-folded (cyclic shift register) compressions of that history
// used to index and tag the TAGE tables, a short path-history register, and
// the geometric history-length series L(i) = round(α^(i-1)·L(1)) introduced
// with the O-GEHL predictor and reused by TAGE.
package history

import (
	"fmt"
	"math"
)

// Buffer is a circular buffer of branch-outcome bits. Bit(0) is the outcome
// of the most recently pushed branch. The capacity is rounded up to a power
// of two so that indexing is a mask.
//
// One byte per bit is deliberately spent: the buffer is tiny (≤ 1 KiB for a
// 300-bit history with slack) and byte access keeps the folded-history
// update branch-free and fast.
type Buffer struct {
	bits []uint8
	head int // index of the most recent bit
	mask int //repro:derived from capacity at construction
}

// NewBuffer returns a buffer able to serve Bit(i) for i in [0, capacity].
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity+2 {
		size <<= 1
	}
	return &Buffer{bits: make([]uint8, size), mask: size - 1}
}

// Push records the outcome of a new branch as the most recent history bit.
//repro:hotpath
func (b *Buffer) Push(taken bool) {
	b.head = (b.head - 1) & b.mask
	if taken {
		b.bits[b.head] = 1
	} else {
		b.bits[b.head] = 0
	}
}

// Bit returns the i-th most recent outcome bit (0 = newest). i must be less
// than the buffer capacity.
//repro:hotpath
func (b *Buffer) Bit(i int) uint8 {
	return b.bits[(b.head+i)&b.mask]
}

// Reset clears the buffer to its freshly-constructed state (all bits zero)
// without reallocating, so pooled readers can recycle their history.
func (b *Buffer) Reset() {
	clear(b.bits)
	b.head = 0
}

// Len returns the number of bits the buffer can address.
//repro:hotpath
func (b *Buffer) Len() int { return len(b.bits) }

// Folded is an incrementally maintained compression ("cyclic shift
// register") of the most recent origLen history bits into compLen bits, as
// used by the TAGE/PPM-like predictors to fold a long global history into a
// table index or tag without rehashing the whole history on every branch.
//
// After every Buffer.Push, call Update exactly once with the same buffer.
type Folded struct {
	comp     uint32
	origLen  int
	compLen  int
	outPoint uint
	mask     uint32
}

// NewFolded returns a folded image of the most recent origLen bits
// compressed into compLen bits. compLen must be in (0, 32]; origLen must be
// non-negative.
func NewFolded(origLen, compLen int) *Folded {
	f := MakeFolded(origLen, compLen)
	return &f
}

// MakeFolded is NewFolded as a value constructor: predictors that keep
// their fold state in one contiguous slice (cache-friendly flat storage)
// embed Folded by value instead of chasing per-table pointers.
func MakeFolded(origLen, compLen int) Folded {
	if compLen <= 0 || compLen > 32 {
		panic(fmt.Sprintf("history: invalid folded compression length %d", compLen))
	}
	if origLen < 0 {
		panic(fmt.Sprintf("history: invalid folded original length %d", origLen))
	}
	return Folded{
		origLen:  origLen,
		compLen:  compLen,
		outPoint: uint(origLen % compLen),
		mask:     (uint32(1) << compLen) - 1,
	}
}

// Update folds the newest history bit in and the bit leaving the origLen
// window out. It must be called once per Buffer.Push, after the push.
//repro:hotpath
func (f *Folded) Update(b *Buffer) {
	f.UpdateBits(b.Bit(0), b.Bit(f.origLen))
}

// UpdateBits is Update with the two boundary bits supplied by the caller:
// predictors that maintain several folds over the same history window
// (TAGE keeps three per table) load the newest and leaving bit once and
// feed every fold of the window from registers.
//repro:hotpath
func (f *Folded) UpdateBits(newest, leaving uint8) {
	f.comp = (f.comp << 1) | uint32(newest)
	f.comp ^= uint32(leaving) << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= f.mask
}

// Value returns the current compLen-bit folded history.
//repro:hotpath
func (f *Folded) Value() uint32 { return f.comp }

// Reset clears the folded state (used together with clearing the buffer).
func (f *Folded) Reset() { f.comp = 0 }

// OrigLen returns the length of the history window being folded.
func (f *Folded) OrigLen() int { return f.origLen }

// CompLen returns the compressed width in bits.
func (f *Folded) CompLen() int { return f.compLen }

// Recompute rebuilds the folded value from scratch by walking the buffer:
// the bit pushed i branches ago contributes at position i mod compLen. This
// O(origLen) direct definition is what the incremental Update maintains; it
// exists so tests can cross-check the automaton against the specification.
func (f *Folded) Recompute(b *Buffer) uint32 {
	var v uint32
	for i := 0; i < f.origLen; i++ {
		if b.Bit(i) != 0 {
			v ^= uint32(1) << (uint(i) % uint(f.compLen))
		}
	}
	return v & f.mask
}

// Path is a short path-history register: the low bit of each branch PC is
// shifted in, keeping the last width bits. TAGE hashes it into the table
// index to break ties between different paths with the same outcome history.
type Path struct {
	value uint32
	width uint
}

// NewPath returns a path history register of the given width (≤ 32).
func NewPath(width uint) *Path {
	if width > 32 {
		width = 32
	}
	return &Path{width: width}
}

// Push shifts in the low bit of pc.
//repro:hotpath
func (p *Path) Push(pc uint64) {
	p.value = ((p.value << 1) | uint32(pc&1)) & ((1 << p.width) - 1)
}

// Value returns the current path history bits.
//repro:hotpath
func (p *Path) Value() uint32 { return p.value }

// Width returns the register width in bits.
func (p *Path) Width() uint { return p.width }

// GeometricLengths returns n history lengths forming a geometric series from
// min to max inclusive: L(1)=min, L(n)=max, L(i)=round(min·α^(i-1)) with
// α=(max/min)^(1/(n-1)). Duplicate rounded values are bumped to keep the
// series strictly increasing, as in the O-GEHL/TAGE papers.
func GeometricLengths(min, max, n int) []int {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []int{max}
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	alpha := math.Pow(float64(max)/float64(min), 1/float64(n-1))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		l := int(float64(min)*math.Pow(alpha, float64(i)) + 0.5)
		out[i] = l
	}
	out[0] = min
	out[n-1] = max
	// Enforce strict monotonicity after rounding.
	for i := 1; i < n; i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	if out[n-1] < max {
		out[n-1] = max
	}
	return out
}
