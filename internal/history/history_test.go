package history

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBufferNewestBit(t *testing.T) {
	b := NewBuffer(16)
	b.Push(true)
	if b.Bit(0) != 1 {
		t.Fatal("Bit(0) should be the just-pushed bit")
	}
	b.Push(false)
	if b.Bit(0) != 0 || b.Bit(1) != 1 {
		t.Fatalf("got Bit(0)=%d Bit(1)=%d, want 0,1", b.Bit(0), b.Bit(1))
	}
}

func TestBufferOrdering(t *testing.T) {
	b := NewBuffer(64)
	seq := []bool{true, true, false, true, false, false, true}
	for _, v := range seq {
		b.Push(v)
	}
	for i := range seq {
		want := uint8(0)
		if seq[len(seq)-1-i] {
			want = 1
		}
		if got := b.Bit(i); got != want {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestBufferWrapAround(t *testing.T) {
	b := NewBuffer(8)
	// Push far more bits than capacity; the most recent ones must be intact.
	r := xrand.New(11)
	var recent []uint8
	for i := 0; i < 1000; i++ {
		v := r.Bool()
		b.Push(v)
		bit := uint8(0)
		if v {
			bit = 1
		}
		recent = append([]uint8{bit}, recent...)
		if len(recent) > 8 {
			recent = recent[:8]
		}
	}
	for i := 0; i < 8; i++ {
		if b.Bit(i) != recent[i] {
			t.Fatalf("after wrap, Bit(%d) = %d, want %d", i, b.Bit(i), recent[i])
		}
	}
}

func TestBufferCapacityRounding(t *testing.T) {
	b := NewBuffer(300)
	if b.Len() < 302 {
		t.Fatalf("buffer too small for requested capacity: %d", b.Len())
	}
	if b.Len()&(b.Len()-1) != 0 {
		t.Fatalf("buffer size %d is not a power of two", b.Len())
	}
}

func TestFoldedMatchesRecompute(t *testing.T) {
	// The incremental CSR automaton must equal the direct chunked-XOR
	// definition at every step, for a spread of window/compression shapes
	// including compLen > origLen and exact multiples.
	shapes := []struct{ orig, comp int }{
		{3, 2}, {5, 5}, {9, 4}, {27, 10}, {80, 9}, {130, 11},
		{300, 10}, {300, 9}, {7, 9}, {16, 8}, {17, 8},
	}
	for _, s := range shapes {
		buf := NewBuffer(s.orig + 2)
		f := NewFolded(s.orig, s.comp)
		r := xrand.New(uint64(s.orig*1000 + s.comp))
		for step := 0; step < 2000; step++ {
			buf.Push(r.Bool())
			f.Update(buf)
			if got, want := f.Value(), f.Recompute(buf); got != want {
				t.Fatalf("shape %+v step %d: incremental %x != direct %x", s, step, got, want)
			}
		}
	}
}

func TestFoldedAllZeros(t *testing.T) {
	buf := NewBuffer(40)
	f := NewFolded(30, 7)
	for i := 0; i < 100; i++ {
		buf.Push(false)
		f.Update(buf)
		if f.Value() != 0 {
			t.Fatalf("all-zero history must fold to 0, got %x", f.Value())
		}
	}
}

func TestFoldedAllOnesPeriodicity(t *testing.T) {
	// With all-taken history, the folded value must become stable once the
	// window is full (steady state: same bit enters and leaves).
	buf := NewBuffer(40)
	f := NewFolded(20, 5)
	var prev uint32
	for i := 0; i < 200; i++ {
		buf.Push(true)
		f.Update(buf)
		if i > 25 && f.Value() != prev {
			t.Fatalf("steady-state all-ones folded value changed at %d: %x -> %x", i, prev, f.Value())
		}
		prev = f.Value()
	}
}

func TestFoldedValueWidth(t *testing.T) {
	buf := NewBuffer(310)
	f := NewFolded(300, 9)
	r := xrand.New(3)
	for i := 0; i < 5000; i++ {
		buf.Push(r.Bool())
		f.Update(buf)
		if f.Value() >= 1<<9 {
			t.Fatalf("folded value %x exceeds 9 bits", f.Value())
		}
	}
}

func TestFoldedReset(t *testing.T) {
	buf := NewBuffer(20)
	f := NewFolded(10, 4)
	for i := 0; i < 15; i++ {
		buf.Push(true)
		f.Update(buf)
	}
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("Reset must clear the folded value")
	}
}

func TestFoldedAccessors(t *testing.T) {
	f := NewFolded(80, 9)
	if f.OrigLen() != 80 || f.CompLen() != 9 {
		t.Fatalf("accessors: got (%d,%d), want (80,9)", f.OrigLen(), f.CompLen())
	}
}

func TestFoldedPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ orig, comp int }{{10, 0}, {10, 33}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFolded(%d,%d) should panic", c.orig, c.comp)
				}
			}()
			NewFolded(c.orig, c.comp)
		}()
	}
}

func TestFoldedDistinguishesHistories(t *testing.T) {
	// Different history contents should usually fold differently.
	mk := func(bits []bool) uint32 {
		buf := NewBuffer(40)
		f := NewFolded(len(bits), 8)
		for _, b := range bits {
			buf.Push(b)
			f.Update(buf)
		}
		return f.Value()
	}
	a := mk([]bool{true, false, true, true, false, false, true, false, true, true})
	b := mk([]bool{false, true, true, true, false, false, true, false, true, true})
	if a == b {
		t.Fatal("two different 10-bit histories folded identically at 8 bits")
	}
}

func TestPathHistory(t *testing.T) {
	p := NewPath(4)
	pcs := []uint64{1, 0, 1, 1}
	for _, pc := range pcs {
		p.Push(pc)
	}
	if p.Value() != 0b1011 {
		t.Fatalf("path value = %04b, want 1011", p.Value())
	}
	// Width must be enforced.
	for i := 0; i < 40; i++ {
		p.Push(1)
	}
	if p.Value() != 0b1111 {
		t.Fatalf("path must stay within 4 bits, got %b", p.Value())
	}
}

func TestPathWidthClamp(t *testing.T) {
	p := NewPath(99)
	if p.Width() != 32 {
		t.Fatalf("width clamp: got %d, want 32", p.Width())
	}
}

func TestGeometricLengthsPaperConfigs(t *testing.T) {
	// The three paper configurations: endpoints must be exact, series
	// strictly increasing.
	cases := []struct {
		min, max, n int
	}{
		{3, 80, 4},
		{5, 130, 7},
		{5, 300, 8},
	}
	for _, c := range cases {
		ls := GeometricLengths(c.min, c.max, c.n)
		if len(ls) != c.n {
			t.Fatalf("GeometricLengths(%d,%d,%d): got %d lengths", c.min, c.max, c.n, len(ls))
		}
		if ls[0] != c.min || ls[len(ls)-1] != c.max {
			t.Fatalf("endpoints: got %v, want %d..%d", ls, c.min, c.max)
		}
		for i := 1; i < len(ls); i++ {
			if ls[i] <= ls[i-1] {
				t.Fatalf("not strictly increasing: %v", ls)
			}
		}
	}
}

func TestGeometricLengthsKnownSeries(t *testing.T) {
	// min 3, max 80, 4 tables: alpha = (80/3)^(1/3) ≈ 2.986 -> 3, 9, 27, 80.
	got := GeometricLengths(3, 80, 4)
	want := []int{3, 9, 27, 80}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestGeometricLengthsDegenerate(t *testing.T) {
	if got := GeometricLengths(5, 100, 1); len(got) != 1 || got[0] != 100 {
		t.Fatalf("n=1: got %v, want [100]", got)
	}
	if got := GeometricLengths(5, 100, 0); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	// min > max collapses to min with monotonic bumping.
	got := GeometricLengths(10, 4, 3)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("degenerate series not increasing: %v", got)
		}
	}
}

func TestGeometricLengthsRatioApproximatelyConstant(t *testing.T) {
	ls := GeometricLengths(5, 300, 8)
	// Ratios should be within a loose band around alpha.
	for i := 2; i < len(ls); i++ {
		r := float64(ls[i]) / float64(ls[i-1])
		if r < 1.2 || r > 2.6 {
			t.Fatalf("ratio %v out of geometric band in %v", r, ls)
		}
	}
}

func TestQuickFoldedIncrementalEqualsDirect(t *testing.T) {
	f := func(seed uint64, origRaw, compRaw uint8) bool {
		orig := int(origRaw%200) + 1
		comp := int(compRaw%16) + 1
		buf := NewBuffer(orig + 2)
		fd := NewFolded(orig, comp)
		r := xrand.New(seed)
		for i := 0; i < 300; i++ {
			buf.Push(r.Bool())
			fd.Update(buf)
			if fd.Value() != fd.Recompute(buf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFoldedUpdate(b *testing.B) {
	buf := NewBuffer(310)
	f := NewFolded(300, 10)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Push(r.Bool())
		f.Update(buf)
	}
}

func BenchmarkBufferPush(b *testing.B) {
	buf := NewBuffer(310)
	for i := 0; i < b.N; i++ {
		buf.Push(i&1 == 0)
	}
}
