// Snapshot codecs for the history machinery. Only mutable state is
// serialized — structure (capacities, fold geometry, register widths)
// is rebuilt from configuration by the restoring side, which lets the
// decoders validate every length against the already-allocated target.
package history

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the buffer's contents: physical size, head index,
// then the physical bit array packed 8 bits per byte (bit i of byte j is
// bits[j*8+i]). Serializing the physical layout rather than the logical
// window keeps restore a straight copy and preserves bit identity.
func (b *Buffer) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.bits)))
	dst = binary.AppendUvarint(dst, uint64(b.head))
	packed := make([]byte, (len(b.bits)+7)/8)
	for i, bit := range b.bits {
		if bit != 0 {
			packed[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return append(dst, packed...)
}

// RestoreState reads state written by AppendState into b. The recorded
// size must match b's allocated capacity: a buffer is restored into a
// predictor rebuilt from the same configuration, so a mismatch means the
// snapshot belongs to a different structure.
func (b *Buffer) RestoreState(r *statecodec.Reader) error {
	size := r.Uvarint()
	head := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if size != uint64(len(b.bits)) {
		return fmt.Errorf("%w: history buffer size %d, want %d", statecodec.ErrCorrupt, size, len(b.bits))
	}
	if head >= size {
		return fmt.Errorf("%w: history buffer head %d out of range", statecodec.ErrCorrupt, head)
	}
	packed := r.Bytes((len(b.bits) + 7) / 8)
	if err := r.Err(); err != nil {
		return err
	}
	b.head = int(head)
	for i := range b.bits {
		b.bits[i] = (packed[i/8] >> (uint(i) % 8)) & 1
	}
	return nil
}

// SetValue restores a folded value captured by Value. Bits beyond the
// fold's compressed width are masked off so a corrupt snapshot cannot
// widen the register.
func (f *Folded) SetValue(v uint32) { f.comp = v & f.mask }

// SetValue restores a path-history value captured by Value, masked to
// the register width.
func (p *Path) SetValue(v uint32) {
	p.value = v & ((1 << p.width) - 1)
}
