// Package sim provides the trace-driven simulation drivers that produce
// every number in the paper: per-class statistics for a TAGE predictor
// with the storage-free confidence estimator, whole-suite aggregation, and
// binary-estimator comparison runs (storage-free vs JRS).
//
// Simulation is functional (no timing): the predictor sees each branch's
// address, predicts, and is updated with the resolved direction, exactly
// like the championship evaluation framework the paper uses.
package sim

import (
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/tage"
	"repro/internal/trace"
)

// Result holds the measurements of one trace run.
type Result struct {
	// Trace is the trace name.
	Trace string
	// Config is the predictor configuration name.
	Config string
	// Mode is the automaton mode.
	Mode core.AutomatonMode

	// Branches is the number of simulated branch records.
	Branches uint64
	// Instructions is the number of dynamic instructions represented.
	Instructions uint64
	// Total tallies all predictions.
	Total metrics.Counts
	// Class tallies per prediction class.
	Class [core.NumClasses]metrics.Counts

	// FinalProbability is the saturation probability at end of run
	// (interesting in adaptive mode).
	FinalProbability float64
}

// MPKI returns the run's mispredictions per kilo-instruction.
//repro:deterministic
func (r Result) MPKI() float64 { return metrics.MPKI(r.Total.Misps, r.Instructions) }

// Level aggregates the class counts into the three confidence levels.
//repro:deterministic
func (r Result) Level(l core.Level) metrics.Counts {
	var c metrics.Counts
	for _, cl := range core.Classes() {
		if cl.Level() == l {
			c.Add(r.Class[cl])
		}
	}
	return c
}

// Pcov returns the prediction coverage of a class.
//repro:deterministic
func (r Result) Pcov(c core.Class) float64 { return metrics.Pcov(r.Class[c], r.Total) }

// MPcov returns the misprediction coverage of a class.
//repro:deterministic
func (r Result) MPcov(c core.Class) float64 { return metrics.MPcov(r.Class[c], r.Total) }

// MPrate returns the misprediction rate of a class in MKP.
//repro:deterministic
func (r Result) MPrate(c core.Class) float64 { return r.Class[c].MKP() }

// ClassMPKI returns the class's contribution to whole-trace misp/KI (the
// right-hand panels of Figures 2, 3 and 5).
//repro:deterministic
func (r Result) ClassMPKI(c core.Class) float64 {
	return metrics.MPKI(r.Class[c].Misps, r.Instructions)
}

// Add merges another result into r (suite aggregation). Trace/Config/Mode
// are kept from r unless empty.
//repro:deterministic
func (r *Result) Add(other Result) {
	if r.Trace == "" {
		r.Trace = other.Trace
	}
	if r.Config == "" {
		r.Config = other.Config
	}
	r.Branches += other.Branches
	r.Instructions += other.Instructions
	r.Total.Add(other.Total)
	for i := range r.Class {
		r.Class[i].Add(other.Class[i])
	}
	r.FinalProbability = other.FinalProbability
}

// Run drives a backend over one trace (optionally truncated to limit
// records; 0 = full trace) and collects per-class statistics. Any
// predictor.Backend works; the TAGE estimator keeps its devirtualized
// hot loop (a *core.Estimator is dispatched to a concrete-typed driver,
// so the per-branch path pays no interface-call overhead and existing
// callers see bit-identical results).
func Run(b predictor.Backend, tr trace.Trace, limit uint64) (Result, error) {
	if est, ok := b.(*core.Estimator); ok {
		return runEstimator(est, tr, limit)
	}
	res := Result{
		Trace:  tr.Name(),
		Config: b.Label(),
		Mode:   predictor.ModeOf(b),
	}
	r := trace.Limit(tr, limit).Open()
	for {
		br, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		pred, class, _ := b.Predict(br.PC)
		miss := pred != br.Taken
		res.Total.Record(miss)
		res.Class[class].Record(miss)
		res.Branches++
		res.Instructions += uint64(br.Instr)
		b.Update(br.PC, br.Taken)
	}
	res.FinalProbability = predictor.SaturationProbabilityOf(b)
	return res, nil
}

// runEstimator is the concrete-typed TAGE driver: the exact loop Run ran
// before backends existed, kept devirtualized for the hot path.
func runEstimator(est *core.Estimator, tr trace.Trace, limit uint64) (Result, error) {
	res := Result{
		Trace:  tr.Name(),
		Config: est.Predictor().Config().Name,
		Mode:   est.Mode(),
	}
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		pred, class, _ := est.Predict(b.PC)
		miss := pred != b.Taken
		res.Total.Record(miss)
		res.Class[class].Record(miss)
		res.Branches++
		res.Instructions += uint64(b.Instr)
		est.Update(b.PC, b.Taken)
	}
	res.FinalProbability = est.SaturationProbability()
	return res, nil
}

// RunConfig builds a fresh estimator for (cfg, opts) and runs it over tr.
func RunConfig(cfg tage.Config, opts core.Options, tr trace.Trace, limit uint64) (Result, error) {
	return Run(core.NewEstimator(cfg, opts), tr, limit)
}

// RunSpec builds a fresh backend from the spec and runs it over tr. For
// TAGE specs this is bit-identical to RunConfig over the equivalent
// (Config, Options) pair.
func RunSpec(sp predictor.Spec, tr trace.Trace, limit uint64) (Result, error) {
	b, err := predictor.Build(sp)
	if err != nil {
		return Result{}, err
	}
	return Run(b, tr, limit)
}

// SuiteResult bundles per-trace results with their aggregate. The
// aggregate accumulates raw counts over all traces (the paper's suite
// "averages" for Tables 1-3).
type SuiteResult struct {
	PerTrace  []Result
	Aggregate Result
}

// RunSuite runs a fresh estimator per trace (predictor state never leaks
// across traces, as in the championship framework).
func RunSuite(cfg tage.Config, opts core.Options, traces []trace.Trace, limit uint64) (SuiteResult, error) {
	per := make([]Result, 0, len(traces))
	for _, tr := range traces {
		res, err := RunConfig(cfg, opts, tr, limit)
		if err != nil {
			var out SuiteResult
			out.Aggregate.Config = cfg.Name
			out.PerTrace = per
			return out, err
		}
		per = append(per, res)
	}
	return AssembleSuite(cfg.Name, opts.Mode, per), nil
}

// AssembleSuite builds a SuiteResult from per-trace results, accumulating
// the aggregate in slice order — the single definition of suite
// aggregation shared by the serial path, the worker pool, and callers
// that assemble suites from individually cached trace results. The
// assembly is deterministic, so a suite built from memoized per-trace
// results is bit-identical to a freshly simulated one.
//repro:deterministic
func AssembleSuite(configName string, mode core.AutomatonMode, per []Result) SuiteResult {
	var out SuiteResult
	out.PerTrace = per
	out.Aggregate.Config = configName
	for _, res := range per {
		out.Aggregate.Add(res)
	}
	out.Aggregate.Trace = "aggregate"
	out.Aggregate.Mode = mode
	return out
}

// BinaryEstimator is a two-way confidence estimator over an arbitrary
// predictor, the interface the related-work baselines implement (JRS,
// enhanced JRS, perceptron self-confidence, bimodal saturation).
type BinaryEstimator interface {
	// HighConfidence grades the upcoming prediction for pc, given the
	// predictor's prediction.
	HighConfidence(pc uint64, pred bool) bool
	// Update trains the estimator with the resolved outcome.
	Update(pc uint64, pred, taken bool)
}

// Predictor is the minimal predict/train interface the binary-estimator
// driver needs; all baseline predictors in this repository satisfy it.
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

// BinaryResult holds a binary-estimator comparison run.
type BinaryResult struct {
	Trace     string
	Total     metrics.Counts
	Confusion metrics.Binary
}

// RunBinary drives a predictor plus binary estimator over a trace.
func RunBinary(p Predictor, est BinaryEstimator, tr trace.Trace, limit uint64) (BinaryResult, error) {
	res := BinaryResult{Trace: tr.Name()}
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		pred := p.Predict(b.PC)
		high := est.HighConfidence(b.PC, pred)
		miss := pred != b.Taken
		res.Total.Record(miss)
		res.Confusion.Record(high, miss)
		est.Update(b.PC, pred, b.Taken)
		p.Update(b.PC, b.Taken)
	}
}

// RunGradedBinary runs any confidence-graded backend in binary (high vs
// not-high) mode over a trace, producing the Grunwald-style confusion
// metrics — the backend-agnostic generalization of RunTAGEBinary.
func RunGradedBinary(b predictor.Backend, tr trace.Trace, limit uint64) (BinaryResult, error) {
	res := BinaryResult{Trace: tr.Name()}
	r := trace.Limit(tr, limit).Open()
	for {
		br, err := r.Next()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		pred, _, level := b.Predict(br.PC)
		miss := pred != br.Taken
		res.Total.Record(miss)
		res.Confusion.Record(level == core.High, miss)
		b.Update(br.PC, br.Taken)
	}
}

// TAGEBinary adapts the storage-free three-level estimator to the binary
// interface by treating High as high confidence, for head-to-head
// comparison with the JRS baseline. It must wrap the same Estimator whose
// predictions drive the run.
type TAGEBinary struct {
	Est *core.Estimator
}

// HighConfidence implements BinaryEstimator. The wrapped estimator's
// Predict must have been called for pc already (RunTAGEBinary does this).
func (t TAGEBinary) HighConfidence(pc uint64, pred bool) bool {
	_ = pc
	_ = pred
	cls := t.Est.Classifier().Classify(t.Est.Observation())
	return cls.Level() == core.High
}

// RunTAGEBinary runs the storage-free estimator in binary mode over a
// trace, producing the Grunwald-style confusion metrics.
func RunTAGEBinary(est *core.Estimator, tr trace.Trace, limit uint64) (BinaryResult, error) {
	res := BinaryResult{Trace: tr.Name()}
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		pred, _, level := est.Predict(b.PC)
		miss := pred != b.Taken
		res.Total.Record(miss)
		res.Confusion.Record(level == core.High, miss)
		est.Update(b.PC, b.Taken)
	}
}
