package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestBinaryAndClassDriversAgree cross-checks the two simulation paths:
// the class-statistics driver (Run) and the binary-confusion driver
// (RunTAGEBinary) must see the identical prediction stream, so totals and
// the high-level split must match exactly.
func TestBinaryAndClassDriversAgree(t *testing.T) {
	tr, _ := workload.ByName("197.parser")
	opts := core.Options{Mode: core.ModeProbabilistic}

	full, err := Run(core.NewEstimator(tage.Small16K(), opts), tr, 50000)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := RunTAGEBinary(core.NewEstimator(tage.Small16K(), opts), tr, 50000)
	if err != nil {
		t.Fatal(err)
	}

	if full.Total != bin.Total {
		t.Fatalf("totals diverge: %+v vs %+v", full.Total, bin.Total)
	}
	hi := full.Level(core.High)
	if bin.Confusion.HighCorrect+bin.Confusion.HighWrong != hi.Preds {
		t.Fatalf("high-level predictions: %d vs %d",
			bin.Confusion.HighCorrect+bin.Confusion.HighWrong, hi.Preds)
	}
	if bin.Confusion.HighWrong != hi.Misps {
		t.Fatalf("high-level mispredictions: %d vs %d", bin.Confusion.HighWrong, hi.Misps)
	}
}

// TestSuiteAggregateEqualsManualSum re-derives the aggregate from the
// per-trace results.
func TestSuiteAggregateEqualsManualSum(t *testing.T) {
	traces := workload.CBP1()[:4]
	sr, err := RunSuite(tage.Small16K(), core.Options{}, traces, 15000)
	if err != nil {
		t.Fatal(err)
	}
	var manual Result
	for _, res := range sr.PerTrace {
		manual.Add(res)
	}
	if manual.Total != sr.Aggregate.Total {
		t.Fatalf("aggregate totals: %+v vs %+v", manual.Total, sr.Aggregate.Total)
	}
	for i := range manual.Class {
		if manual.Class[i] != sr.Aggregate.Class[i] {
			t.Fatalf("class %d aggregate mismatch", i)
		}
	}
	if manual.Instructions != sr.Aggregate.Instructions {
		t.Fatal("instruction totals mismatch")
	}
}

// TestHeterogeneousJobsParallelMatchesSerial drives the sharded engine
// with a mixed (trace × config × mode) job list — the shape composite
// experiments produce — and requires slot-for-slot identical results
// between one worker and many.
func TestHeterogeneousJobsParallelMatchesSerial(t *testing.T) {
	traces := workload.CBP1()[:3]
	var jobs []Job
	for _, cfg := range []func() tage.Config{tage.Small16K, tage.Medium64K} {
		for _, mode := range []core.AutomatonMode{core.ModeStandard, core.ModeProbabilistic} {
			for _, tr := range traces {
				jobs = append(jobs, Job{Cfg: cfg(), Opts: core.Options{Mode: mode}, Trace: tr, Limit: 12000})
			}
		}
	}
	serial, err := Serial.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SuiteRunner{Workers: 6}.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("job %d diverges under parallel execution:\nserial:   %+v\nparallel: %+v",
				i, serial[i], par[i])
		}
	}
}

// TestFreshEstimatorPerTrace verifies that suite runs do not leak state
// across traces: running trace B alone equals running it after trace A in
// a suite.
func TestFreshEstimatorPerTrace(t *testing.T) {
	a, _ := workload.ByName("FP-1")
	b, _ := workload.ByName("MM-1")
	suite, err := RunSuite(tage.Small16K(), core.Options{}, []trace.Trace{a, b}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := RunConfig(tage.Small16K(), core.Options{}, b, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if suite.PerTrace[1].Total != alone.Total {
		t.Fatalf("state leaked across suite traces: %+v vs %+v",
			suite.PerTrace[1].Total, alone.Total)
	}
}
