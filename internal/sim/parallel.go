package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/tage"
	"repro/internal/trace"
)

// Job is one independent simulation unit: a fresh estimator for (Cfg,
// Opts) driven over Trace. Jobs share no mutable state, which is what
// makes the suite embarrassingly parallel.
type Job struct {
	Cfg   tage.Config
	Opts  core.Options
	Trace trace.Trace
	Limit uint64
}

// SuiteRunner fans independent simulation jobs out across a worker pool.
//
// Determinism: every job is itself deterministic (fresh predictor, seeded
// randomness, replayable trace), results are written to the slot of the
// job that produced them, and all merging happens in job order after the
// pool drains — so the output is bit-identical to the serial path no
// matter how the scheduler interleaves workers.
//
// The zero value runs with GOMAXPROCS workers; Workers=1 degrades to a
// plain serial loop with no goroutines.
type SuiteRunner struct {
	// Workers is the pool size. <= 0 selects GOMAXPROCS.
	Workers int
	// JobTime, when non-nil, receives one wall-time sample per completed
	// iteration (per trace in a suite run). The histogram is safe for the
	// pool's concurrent observes and costs nothing when nil.
	JobTime *obs.Histogram
}

// Serial is the explicit single-worker runner (the reference semantics
// the parallel path must reproduce bit for bit).
var Serial = SuiteRunner{Workers: 1}

func (s SuiteRunner) workerCount(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across the pool and returns
// the lowest-index error (the same error a serial loop would return
// first). Iterations must be independent of each other.
//
// After a failure, workers stop claiming new indices (in-flight
// iterations still finish). Indices are claimed in increasing order, so
// everything below the first failing index has already been claimed and
// completes — the lowest-index error is always recorded before the pool
// drains, keeping the returned error identical to the serial loop's.
func (s SuiteRunner) ForEach(n int, fn func(i int) error) error {
	if s.JobTime != nil {
		inner := fn
		hist := s.JobTime
		fn = func(i int) error {
			start := time.Now()
			err := inner(i)
			hist.Observe(time.Since(start))
			return err
		}
	}
	w := s.workerCount(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachAt runs fn(idx[k]) for every k in [0, len(idx)) across the
// pool: the sparse-index counterpart of ForEach, for callers that submit
// only a subset of a larger job list (e.g. the cache misses of a
// memoized suite). Error semantics follow ForEach over positions in idx:
// the error returned is the one a serial loop over idx would hit first.
func (s SuiteRunner) ForEachAt(idx []int, fn func(i int) error) error {
	return s.ForEach(len(idx), func(k int) error { return fn(idx[k]) })
}

// RunJobs executes every job and returns the results in job order.
func (s SuiteRunner) RunJobs(jobs []Job) ([]Result, error) {
	out := make([]Result, len(jobs))
	err := s.ForEach(len(jobs), func(i int) error {
		res, err := RunConfig(jobs[i].Cfg, jobs[i].Opts, jobs[i].Trace, jobs[i].Limit)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunSuite is the parallel counterpart of the package-level RunSuite: a
// fresh estimator per trace, per-trace results in trace order, and the
// aggregate accumulated in trace order (bit-identical to the serial
// aggregate).
func (s SuiteRunner) RunSuite(cfg tage.Config, opts core.Options, traces []trace.Trace, limit uint64) (SuiteResult, error) {
	jobs := make([]Job, len(traces))
	for i, tr := range traces {
		jobs[i] = Job{Cfg: cfg, Opts: opts, Trace: tr, Limit: limit}
	}
	per, err := s.RunJobs(jobs)
	if err != nil {
		return SuiteResult{}, err
	}
	return AssembleSuite(cfg.Name, opts.Mode, per), nil
}

// RunSuiteSpec is the backend-agnostic counterpart of RunSuite: a fresh
// backend built from the spec per trace (state never leaks across
// traces), per-trace results in trace order, deterministic aggregate.
// For TAGE specs the output is bit-identical to RunSuite over the
// equivalent (Config, Options) pair.
func (s SuiteRunner) RunSuiteSpec(sp predictor.Spec, traces []trace.Trace, limit uint64) (SuiteResult, error) {
	// Build one probe instance up front: it validates the spec once
	// (before any worker runs) and supplies the aggregate's label/mode.
	probe, err := predictor.Build(sp)
	if err != nil {
		return SuiteResult{}, err
	}
	per := make([]Result, len(traces))
	err = s.ForEach(len(traces), func(i int) error {
		res, err := RunSpec(sp, traces[i], limit)
		if err != nil {
			return err
		}
		per[i] = res
		return nil
	})
	if err != nil {
		return SuiteResult{}, err
	}
	return AssembleSuite(probe.Label(), predictor.ModeOf(probe), per), nil
}

// RunSuiteSpec runs a suite over the spec's backend with the serial
// reference runner.
func RunSuiteSpec(sp predictor.Spec, traces []trace.Trace, limit uint64) (SuiteResult, error) {
	return Serial.RunSuiteSpec(sp, traces, limit)
}
