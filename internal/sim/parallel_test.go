package sim

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tage"
	"repro/internal/workload"
)

// TestParallelSuiteBitIdenticalToSerial is the determinism contract of the
// sharded engine: for every automaton mode, a multi-worker RunSuite must
// produce exactly the same SuiteResult — per-trace results, aggregate
// counts, and final float fields — as the serial reference path.
func TestParallelSuiteBitIdenticalToSerial(t *testing.T) {
	traces := workload.CBP1()[:6]
	for _, mode := range []core.AutomatonMode{core.ModeStandard, core.ModeProbabilistic, core.ModeAdaptive} {
		opts := core.Options{Mode: mode}
		serial, err := RunSuite(tage.Small16K(), opts, traces, 20000)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			par, err := SuiteRunner{Workers: workers}.RunSuite(tage.Small16K(), opts, traces, 20000)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("mode %v, %d workers: parallel result diverges\nserial:   %+v\nparallel: %+v",
					mode, workers, serial.Aggregate, par.Aggregate)
			}
		}
	}
}

// TestRunJobsPreservesJobOrder checks results land in the slot of the job
// that produced them, independent of completion order.
func TestRunJobsPreservesJobOrder(t *testing.T) {
	traces := workload.CBP1()[:5]
	jobs := make([]Job, len(traces))
	for i, tr := range traces {
		jobs[i] = Job{Cfg: tage.Small16K(), Opts: core.Options{}, Trace: tr, Limit: 10000}
	}
	out, err := SuiteRunner{Workers: 4}.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out), len(jobs))
	}
	for i, res := range out {
		if res.Trace != traces[i].Name() {
			t.Fatalf("slot %d holds trace %q, want %q", i, res.Trace, traces[i].Name())
		}
	}
}

// TestForEachReturnsLowestIndexError mirrors the serial loop's error
// semantics: with several failing iterations, the reported error is the
// one a serial loop would have hit first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := SuiteRunner{Workers: 4}.ForEach(10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("want lowest-index error %v, got %v", errA, err)
	}
}

// TestForEachRunsEveryIndexOnce counts invocations under contention.
func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	if err := (SuiteRunner{Workers: 8}).ForEach(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestForEachJobTime checks the optional per-iteration wall-time
// histogram sees every iteration exactly once — on both the serial
// degenerate path and the worker pool — and stays inert when nil.
func TestForEachJobTime(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hist obs.Histogram
		runner := SuiteRunner{Workers: workers, JobTime: &hist}
		if err := runner.ForEach(25, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if got := hist.Count(); got != 25 {
			t.Fatalf("%d workers: JobTime saw %d iterations, want 25", workers, got)
		}
	}
	// An iteration that fails is still timed (it ran).
	var hist obs.Histogram
	boom := errors.New("boom")
	err := SuiteRunner{Workers: 1, JobTime: &hist}.ForEach(3, func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := hist.Count(); got != 2 {
		t.Fatalf("JobTime saw %d iterations, want 2 (serial stops at the failure)", got)
	}
}

// TestForEachAtSparseIndices exercises the miss-only submission path:
// only the given indices run (each exactly once), and the error
// semantics follow the position in the index slice, matching what a
// serial loop over the sparse set would report first.
func TestForEachAtSparseIndices(t *testing.T) {
	const n = 50
	idx := []int{2, 3, 11, 17, 42, 49}
	for _, workers := range []int{1, 4} {
		var counts [n]atomic.Int32
		if err := (SuiteRunner{Workers: workers}).ForEachAt(idx, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := make(map[int]bool, len(idx))
		for _, i := range idx {
			want[i] = true
		}
		for i := range counts {
			c := counts[i].Load()
			if want[i] && c != 1 {
				t.Fatalf("workers=%d: submitted index %d ran %d times", workers, i, c)
			}
			if !want[i] && c != 0 {
				t.Fatalf("workers=%d: unsubmitted index %d ran %d times", workers, i, c)
			}
		}

		errA := errors.New("a")
		errB := errors.New("b")
		err := (SuiteRunner{Workers: workers}).ForEachAt(idx, func(i int) error {
			switch i {
			case 11: // earlier position in idx than 42
				return errA
			case 42:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: want first-position error %v, got %v", workers, errA, err)
		}
	}

	// Empty index set: nothing runs, no error.
	if err := (SuiteRunner{Workers: 4}).ForEachAt(nil, func(int) error { return errors.New("x") }); err != nil {
		t.Fatalf("empty index set returned %v", err)
	}
}

// TestForEachZeroAndNegativeWorkers exercises the GOMAXPROCS default.
func TestForEachZeroAndNegativeWorkers(t *testing.T) {
	for _, w := range []int{0, -3} {
		ran := 0
		var mu atomic.Int32
		if err := (SuiteRunner{Workers: w}).ForEach(4, func(i int) error {
			mu.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int(mu.Load()) != 4 {
			t.Fatalf("workers=%d ran %d of 4 iterations", w, ran)
		}
	}
}
