package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gshare"
	"repro/internal/jrs"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRunBasicInvariants(t *testing.T) {
	est := core.NewEstimator(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic})
	tr, _ := workload.ByName("FP-1")
	res, err := Run(est, tr, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != "FP-1" || res.Config != "16Kbits" || res.Mode != core.ModeProbabilistic {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.Branches != 50000 {
		t.Fatalf("branches = %d", res.Branches)
	}
	if res.Instructions <= res.Branches {
		t.Fatal("instructions must exceed branches")
	}
	// Class counts must sum to totals.
	var preds, misps uint64
	for _, c := range core.Classes() {
		preds += res.Class[c].Preds
		misps += res.Class[c].Misps
	}
	if preds != res.Total.Preds || misps != res.Total.Misps {
		t.Fatalf("class sums (%d,%d) != totals (%d,%d)", preds, misps, res.Total.Preds, res.Total.Misps)
	}
	if res.Total.Preds != res.Branches {
		t.Fatal("every branch must be predicted exactly once")
	}
	if res.FinalProbability != 1.0/128 {
		t.Fatalf("final probability = %v", res.FinalProbability)
	}
}

func TestLevelAggregation(t *testing.T) {
	est := core.NewEstimator(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic})
	tr, _ := workload.ByName("INT-2")
	res, err := Run(est, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	var lvlPreds uint64
	for _, l := range core.Levels() {
		lvlPreds += res.Level(l).Preds
	}
	if lvlPreds != res.Total.Preds {
		t.Fatal("level aggregation must partition all predictions")
	}
	// The three-level property: rate(low) > rate(medium) > rate(high).
	lo, med, hi := res.Level(core.Low).MKP(), res.Level(core.Medium).MKP(), res.Level(core.High).MKP()
	if !(lo > med && med > hi) {
		t.Fatalf("level rates not ordered: low=%.1f med=%.1f high=%.1f MKP", lo, med, hi)
	}
}

func TestCoverageAccessors(t *testing.T) {
	est := core.NewEstimator(tage.Small16K(), core.Options{})
	tr, _ := workload.ByName("MM-1")
	res, err := Run(est, tr, 40000)
	if err != nil {
		t.Fatal(err)
	}
	var pcov, mpcov, classMPKI float64
	for _, c := range core.Classes() {
		pcov += res.Pcov(c)
		mpcov += res.MPcov(c)
		classMPKI += res.ClassMPKI(c)
	}
	if math.Abs(pcov-1) > 1e-9 {
		t.Fatalf("Pcov sums to %v", pcov)
	}
	if res.Total.Misps > 0 && math.Abs(mpcov-1) > 1e-9 {
		t.Fatalf("MPcov sums to %v", mpcov)
	}
	if math.Abs(classMPKI-res.MPKI()) > 1e-9 {
		t.Fatalf("class MPKI sums to %v, total %v", classMPKI, res.MPKI())
	}
}

func TestRunSuiteAggregates(t *testing.T) {
	traces := []trace.Trace{workload.CBP1()[0], workload.CBP1()[5]}
	sr, err := RunSuite(tage.Small16K(), core.Options{}, traces, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerTrace) != 2 {
		t.Fatalf("per-trace count = %d", len(sr.PerTrace))
	}
	if sr.Aggregate.Branches != sr.PerTrace[0].Branches+sr.PerTrace[1].Branches {
		t.Fatal("aggregate branches mismatch")
	}
	if sr.Aggregate.Total.Misps != sr.PerTrace[0].Total.Misps+sr.PerTrace[1].Total.Misps {
		t.Fatal("aggregate mispredictions mismatch")
	}
	if sr.Aggregate.Trace != "aggregate" || sr.Aggregate.Config != "16Kbits" {
		t.Fatalf("aggregate metadata: %+v", sr.Aggregate)
	}

	// AssembleSuite over the same per-trace results must reproduce the
	// suite bit for bit — it is the single aggregation definition the
	// serial path, the pool and the per-trace memo all share.
	rebuilt := AssembleSuite("16Kbits", core.Options{}.Mode, sr.PerTrace)
	if rebuilt.Aggregate != sr.Aggregate {
		t.Fatalf("AssembleSuite aggregate differs:\n%+v\n%+v", rebuilt.Aggregate, sr.Aggregate)
	}
}

func TestRunDeterministic(t *testing.T) {
	tr, _ := workload.ByName("SERV-1")
	a, _ := RunConfig(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic}, tr, 30000)
	b, _ := RunConfig(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic}, tr, 30000)
	if a.Total != b.Total {
		t.Fatalf("nondeterministic run: %+v vs %+v", a.Total, b.Total)
	}
	for i := range a.Class {
		if a.Class[i] != b.Class[i] {
			t.Fatalf("class %d differs across identical runs", i)
		}
	}
}

func TestRunBinaryJRS(t *testing.T) {
	tr, _ := workload.ByName("INT-1")
	p := gshare.New(12, 10)
	e := jrs.NewDefault(12, 10)
	res, err := RunBinary(p, e, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != res.Total.Preds {
		t.Fatal("confusion total mismatch")
	}
	// JRS PVP must be high; PVN should be meaningfully above the base rate.
	if res.Confusion.PVP() < 0.9 {
		t.Errorf("JRS PVP = %.3f, want > 0.9", res.Confusion.PVP())
	}
	base := res.Total.Rate()
	if res.Confusion.PVN() < 2*base {
		t.Errorf("JRS PVN = %.3f, want well above base rate %.3f", res.Confusion.PVN(), base)
	}
}

func TestRunTAGEBinary(t *testing.T) {
	tr, _ := workload.ByName("INT-1")
	est := core.NewEstimator(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic})
	res, err := RunTAGEBinary(est, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != res.Total.Preds {
		t.Fatal("confusion total mismatch")
	}
	// The high-confidence class must be very clean (paper: < 1%).
	if res.Confusion.PVP() < 0.97 {
		t.Errorf("storage-free PVP = %.3f, want > 0.97", res.Confusion.PVP())
	}
}

func TestResultAddMergesMetadata(t *testing.T) {
	var agg Result
	agg.Add(Result{Trace: "x", Config: "c", Branches: 5})
	if agg.Trace != "x" || agg.Config != "c" || agg.Branches != 5 {
		t.Fatalf("Add did not adopt metadata: %+v", agg)
	}
}

func TestMPKIZeroInstr(t *testing.T) {
	var r Result
	if r.MPKI() != 0 {
		t.Fatal("zero-instruction MPKI must be 0")
	}
}
