// Package bimodal implements Smith's 2-bit counter bimodal predictor
// (Smith, ISCA 1981): a PC-indexed table of 2-bit saturating counters.
//
// It serves three roles in this repository: the TAGE base predictor
// component (the paper's configurations use unshared hysteresis, i.e. plain
// 2-bit counters); a standalone baseline predictor; and the original
// storage-free confidence estimator — Smith observed that a saturated
// counter is more likely to be correct than a weak one, the idea the paper
// generalizes to TAGE.
package bimodal

import (
	"fmt"

	"repro/internal/counter"
)

// Predictor is a PC-indexed table of 2-bit counters.
type Predictor struct {
	table   []counter.Bimodal
	mask    uint64
	logSize uint
}

// New returns a bimodal predictor with 2^logSize entries, initialized to
// weak not-taken (the conventional cold state).
func New(logSize uint) *Predictor {
	if logSize == 0 || logSize > 28 {
		panic(fmt.Sprintf("bimodal: unreasonable logSize %d", logSize))
	}
	n := 1 << logSize
	t := make([]counter.Bimodal, n)
	for i := range t {
		t[i] = counter.BimodalWeakNotTaken
	}
	return &Predictor{table: t, mask: uint64(n - 1), logSize: logSize}
}

// index maps a branch PC to a table slot. The low two bits of typical RISC
// branch addresses are constant, so they are shifted out before masking.
func (p *Predictor) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict returns the predicted direction for pc.
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.index(pc)].Taken()
}

// Counter returns the raw 2-bit counter state for pc, which the confidence
// classifier inspects (a weak counter makes the prediction low confidence).
func (p *Predictor) Counter(pc uint64) counter.Bimodal {
	return p.table[p.index(pc)]
}

// Weak reports whether pc's counter is in a weak state.
func (p *Predictor) Weak(pc uint64) bool {
	return p.table[p.index(pc)].Weak()
}

// Update trains the counter for pc toward the resolved direction.
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.table[i] = p.table[i].Update(taken)
}

// Entries returns the number of table entries.
func (p *Predictor) Entries() int { return len(p.table) }

// StorageBits returns the predictor's storage budget in bits
// (2 bits per entry, hysteresis unshared).
func (p *Predictor) StorageBits() int { return 2 * len(p.table) }
