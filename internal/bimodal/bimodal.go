// Package bimodal implements Smith's 2-bit counter bimodal predictor
// (Smith, ISCA 1981): a PC-indexed table of 2-bit saturating counters.
//
// It serves three roles in this repository: the TAGE base predictor
// component (the paper's configurations use unshared hysteresis, i.e. plain
// 2-bit counters); a standalone baseline predictor; and the original
// storage-free confidence estimator — Smith observed that a saturated
// counter is more likely to be correct than a weak one, the idea the paper
// generalizes to TAGE.
package bimodal

import (
	"fmt"

	"repro/internal/counter"
)

// Predictor is a PC-indexed table of 2-bit counters.
type Predictor struct {
	table   []counter.Bimodal
	mask    uint64 //repro:derived from logSize at construction
	logSize uint   //repro:derived construction parameter, fixed for the predictor's lifetime
}

// New returns a bimodal predictor with 2^logSize entries, initialized to
// weak not-taken (the conventional cold state).
func New(logSize uint) *Predictor {
	if logSize == 0 || logSize > 28 {
		panic(fmt.Sprintf("bimodal: unreasonable logSize %d", logSize))
	}
	n := 1 << logSize
	t := make([]counter.Bimodal, n)
	for i := range t {
		t[i] = counter.BimodalWeakNotTaken
	}
	return &Predictor{table: t, mask: uint64(n - 1), logSize: logSize}
}

// index maps a branch PC to a table slot. The low two bits of typical RISC
// branch addresses are constant, so they are shifted out before masking.
//repro:hotpath
func (p *Predictor) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict returns the predicted direction for pc.
//repro:hotpath
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.index(pc)].Taken()
}

// Counter returns the raw 2-bit counter state for pc, which the confidence
// classifier inspects (a weak counter makes the prediction low confidence).
//repro:hotpath
func (p *Predictor) Counter(pc uint64) counter.Bimodal {
	return p.table[p.index(pc)]
}

// Weak reports whether pc's counter is in a weak state.
//repro:hotpath
func (p *Predictor) Weak(pc uint64) bool {
	return p.table[p.index(pc)].Weak()
}

// Update trains the counter for pc toward the resolved direction.
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.table[i] = p.table[i].Update(taken)
}

// Entries returns the number of table entries.
func (p *Predictor) Entries() int { return len(p.table) }

// StorageBits returns the predictor's storage budget in bits
// (2 bits per entry, hysteresis unshared).
func (p *Predictor) StorageBits() int { return 2 * len(p.table) }

// Packed is the arena-backed bimodal variant: the same 2-bit-counter
// table stored 16 counters per uint32 word, over a word slice the caller
// may carve out of a larger backing allocation. The TAGE predictor uses
// it to keep its base table and tagged tables in one arena (hardware
// implementations hold the whole predictor in one SRAM macro for the
// same locality reason); predictions are bit-identical to Predictor's.
type Packed struct {
	words   []uint32
	mask    uint64
	logSize uint
}

// packedPerWord is the number of 2-bit counters per backing word.
const packedPerWord = 16

// weakNotTakenWord is a backing word with every counter at
// BimodalWeakNotTaken (0b01 repeated), the conventional cold state.
const weakNotTakenWord = 0x5555_5555

// PackedWords returns the backing-slice length (in uint32 words) a
// Packed table of 2^logSize entries requires.
func PackedWords(logSize uint) int {
	return (1<<logSize + packedPerWord - 1) / packedPerWord
}

// NewPackedIn initializes a Packed table of 2^logSize entries over the
// given backing words (length must be exactly PackedWords(logSize)),
// resetting every counter to weak not-taken.
func NewPackedIn(words []uint32, logSize uint) *Packed {
	if logSize == 0 || logSize > 28 {
		panic(fmt.Sprintf("bimodal: unreasonable logSize %d", logSize))
	}
	if len(words) != PackedWords(logSize) {
		panic(fmt.Sprintf("bimodal: backing slice has %d words, want %d", len(words), PackedWords(logSize)))
	}
	for i := range words {
		words[i] = weakNotTakenWord
	}
	return &Packed{words: words, mask: uint64(1<<logSize) - 1, logSize: logSize}
}

// NewPacked returns a self-backed Packed table with 2^logSize entries.
func NewPacked(logSize uint) *Packed {
	return NewPackedIn(make([]uint32, PackedWords(logSize)), logSize)
}

// index maps a branch PC to a table slot (same mapping as Predictor).
//repro:hotpath
func (p *Packed) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Counter returns the raw 2-bit counter state for pc.
//repro:hotpath
func (p *Packed) Counter(pc uint64) counter.Bimodal {
	i := p.index(pc)
	return counter.Bimodal(p.words[i/packedPerWord] >> (i % packedPerWord * 2) & 3)
}

// Predict returns the predicted direction for pc.
//repro:hotpath
func (p *Packed) Predict(pc uint64) bool { return p.Counter(pc).Taken() }

// Weak reports whether pc's counter is in a weak state.
//repro:hotpath
func (p *Packed) Weak(pc uint64) bool { return p.Counter(pc).Weak() }

// Update trains the counter for pc toward the resolved direction.
//repro:hotpath
func (p *Packed) Update(pc uint64, taken bool) {
	i := p.index(pc)
	w, sh := i/packedPerWord, i%packedPerWord*2
	c := counter.Bimodal(p.words[w] >> sh & 3).Update(taken)
	p.words[w] = p.words[w]&^(3<<sh) | uint32(c)<<sh
}

// Entries returns the number of table entries.
func (p *Packed) Entries() int { return 1 << p.logSize }

// StorageBits returns the table's storage budget in bits (2 per entry).
func (p *Packed) StorageBits() int { return 2 << p.logSize }
