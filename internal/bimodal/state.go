// Snapshot codec for the standalone bimodal predictor: the mutable
// state is exactly the counter table, one byte per 2-bit counter.
package bimodal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/counter"
	"repro/internal/statecodec"
)

// AppendState appends the counter table to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.table)))
	for _, c := range p.table {
		dst = append(dst, byte(c))
	}
	return dst
}

// RestoreState reads state written by AppendState into p, validating
// the table length against p's configuration and each counter against
// the 2-bit range.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(p.table)) {
		return fmt.Errorf("%w: bimodal table %d entries, want %d", statecodec.ErrCorrupt, n, len(p.table))
	}
	raw := r.Bytes(len(p.table))
	if err := r.Err(); err != nil {
		return err
	}
	for _, b := range raw {
		if b > byte(counter.BimodalStrongTaken) {
			return fmt.Errorf("%w: bimodal counter value %d", statecodec.ErrCorrupt, b)
		}
	}
	for i, b := range raw {
		p.table[i] = counter.Bimodal(b)
	}
	return nil
}
