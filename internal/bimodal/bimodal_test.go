package bimodal

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/workload"
)

func TestColdPredictionIsNotTaken(t *testing.T) {
	p := New(10)
	if p.Predict(0x400100) {
		t.Fatal("cold predictor should predict not-taken")
	}
	if !p.Weak(0x400100) {
		t.Fatal("cold counters must be weak")
	}
}

func TestLearnsBias(t *testing.T) {
	p := New(10)
	pc := uint64(0x400200)
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("should predict taken after taken training")
	}
	if p.Weak(pc) {
		t.Fatal("counter should be saturated after 4 taken updates")
	}
	if p.Counter(pc) != counter.BimodalStrongTaken {
		t.Fatalf("counter = %d, want strong taken", p.Counter(pc))
	}
}

func TestHysteresis(t *testing.T) {
	p := New(8)
	pc := uint64(0x40)
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	// One contrary outcome must not flip a saturated counter's prediction.
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Fatal("single not-taken should not flip a strong-taken counter")
	}
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Fatal("two not-takens should flip the prediction")
	}
}

func TestAliasing(t *testing.T) {
	p := New(4) // 16 entries
	a := uint64(0x1000)
	b := a + (1 << (4 + 2)) // same index after >>2 and mask
	for i := 0; i < 4; i++ {
		p.Update(a, true)
	}
	if !p.Predict(b) {
		t.Fatal("aliased PCs must share the counter")
	}
}

func TestIndexIgnoresLowBits(t *testing.T) {
	p := New(8)
	p.Update(0x1000, true)
	p.Update(0x1000, true)
	if !p.Predict(0x1002) {
		t.Fatal("PCs differing only in bits 0..1 must map to one entry")
	}
}

func TestStorageBits(t *testing.T) {
	if got := New(10).StorageBits(); got != 2048 {
		t.Fatalf("2^10-entry bimodal = %d bits, want 2048", got)
	}
	if got := New(10).Entries(); got != 1024 {
		t.Fatalf("entries = %d, want 1024", got)
	}
}

func TestPanicsOnBadSize(t *testing.T) {
	for _, sz := range []uint{0, 29} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", sz)
				}
			}()
			New(sz)
		}()
	}
}

func TestAccuracyOnBiasedWorkload(t *testing.T) {
	// On a heavily biased trace the bimodal predictor must approach the
	// bias rate. Single site, P(taken)=0.9 -> ~10% mispredictions.
	prog := workload.NewBuilder("b", 5).SetLength(50000).
		Block(1, 1, 1, workload.S(workload.Biased{P: 0.9})).
		MustBuild()
	p := New(12)
	r := prog.Open()
	miss, n := 0, 0
	for {
		br, err := r.Next()
		if err != nil {
			break
		}
		if p.Predict(br.PC) != br.Taken {
			miss++
		}
		p.Update(br.PC, br.Taken)
		n++
	}
	rate := float64(miss) / float64(n)
	if rate > 0.13 {
		t.Fatalf("miss rate %.3f on 0.9-biased branch, want <= ~0.10", rate)
	}
}

func TestLoopCostsOneMissPerIteration(t *testing.T) {
	// A trip-5 loop mispredicts only the exit once warmed: rate -> 1/5.
	prog := workload.NewBuilder("l", 6).SetLength(20000).
		Block(1, 1, 1, workload.S(workload.Loop{Trip: 5})).
		MustBuild()
	p := New(10)
	r := prog.Open()
	miss, n := 0, 0
	for {
		br, err := r.Next()
		if err != nil {
			break
		}
		if n > 100 { // skip warmup
			if p.Predict(br.PC) != br.Taken {
				miss++
			}
		}
		p.Update(br.PC, br.Taken)
		n++
	}
	rate := float64(miss) / float64(n-100)
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("loop miss rate %.3f, want ~0.20", rate)
	}
}

func TestWeakTracksCounter(t *testing.T) {
	p := New(8)
	pc := uint64(0x2000)
	if !p.Weak(pc) {
		t.Fatal("cold entry should be weak")
	}
	p.Update(pc, true) // 1 -> 2, still weak
	if !p.Weak(pc) {
		t.Fatal("counter 2 is weak")
	}
	p.Update(pc, true) // 2 -> 3
	if p.Weak(pc) {
		t.Fatal("counter 3 is strong")
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(12)
	for i := 0; i < b.N; i++ {
		pc := uint64(i*29) & 0xFFFF
		taken := i&3 != 0
		_ = p.Predict(pc)
		p.Update(pc, taken)
	}
}
