package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
	"repro/internal/xrand"
)

// SuiteLength is the per-trace record count used by the standard suites.
// Experiment harnesses shorten passes with trace.Limit when appropriate.
const SuiteLength = 600_000

// spec is a declarative trace recipe. buildSpec composes the archetype
// blocks it describes into a Program; the fields are knobs over the
// mechanisms that populate the paper's confidence classes (see the package
// comment).
type spec struct {
	name string
	seed uint64

	// constWeight schedules the glue block of effectively-constant branches
	// (high-conf-bim material: the bimodal component predicts them forever).
	constWeight int

	// loopTrips adds one hot block per entry with a fixed-trip loop. Long
	// trips (>80) are only fully captured by predictors with long histories.
	loopTrips []int

	// patternPeriods adds one hot block per entry with a periodic branch.
	patternPeriods []int

	// corrLags, if non-empty, adds a block whose last branch is an XOR of
	// the global outcomes at these lags (plus pattern neighbors providing
	// low-entropy history), with corrNoise intrinsic noise.
	corrLags  []int
	corrNoise float64

	// biasedPs adds one intrinsically-unpredictable block with these
	// taken-probabilities, scheduled with weight biasedWeight.
	biasedPs     []float64
	biasedWeight int

	// varLoops adds variable-trip loops (body predictable, exit not).
	varLoops [][2]int

	// footprintSites spreads this many near-constant branch sites over many
	// low-weight blocks (server-style static footprint; aliases the small
	// bimodal table). footprintBias is their taken-probability.
	footprintSites int
	footprintBias  float64

	// patternNoise is the per-execution flip probability of the pattern
	// branches (residual unpredictability of otherwise regular branches).
	// 0 selects the 0.01 default; negative disables noise entirely.
	patternNoise float64

	// phased adds behavior-switching blocks that invalidate learned state
	// periodically (warmup bursts feeding medium-conf-bim).
	phased bool

	length uint64
}

// patternBits generates a fixed pattern with a ~3:1 taken bias. Real
// regular branches are direction-dominated with sparse structured
// exceptions; the majority direction is served by densely-revisited
// short-history TAGE entries (which saturate quickly) while the exceptions
// need phase-specific long-history entries — the mix that produces the
// paper's saturated-class coverage. Unbiased random patterns would force
// every prediction through slow phase-specific entries.
func patternBits(r *xrand.Rand, period int) []bool {
	bits := make([]bool, period)
	ones := 0
	for i := range bits {
		bits[i] = r.Float64() < 0.75
		if bits[i] {
			ones++
		}
	}
	// Avoid degenerate all-same patterns, which would be Const.
	if ones == 0 {
		bits[0] = true
	}
	if ones == period {
		bits[period-1] = false
	}
	return bits
}

func buildSpec(s spec) *Program {
	if s.patternNoise == 0 {
		s.patternNoise = 0.001
	} else if s.patternNoise < 0 {
		s.patternNoise = 0
	}
	b := NewBuilder(s.name, s.seed)
	r := xrand.New(xrand.Mix64(s.seed ^ 0x5EED))
	length := s.length
	if length == 0 {
		length = SuiteLength
	}
	b.SetLength(length)

	if s.constWeight > 0 {
		b.Block(s.constWeight, 3, 8,
			S(Const{Taken: true}),
			S(Const{Taken: false}),
			S(Biased{P: 0.995}),
			S(Const{Taken: true}),
			S(Biased{P: 0.005}),
		)
	}
	// Loop and pattern blocks stay active long enough for several full
	// trips/periods per activation: a predictor can only capture a
	// structure whose history window fits inside one activation, so the
	// repetition count scales with the structure size (and the schedule
	// weight scales inversely, keeping each block's dynamic mass roughly
	// constant).
	for _, t := range s.loopTrips {
		w := 120 / t
		if w < 1 {
			w = 1
		}
		b.Block(w, 8*t, 16*t,
			S(Loop{Trip: t}),
			S(Const{Taken: true}),
			S(Biased{P: 0.998}),
		)
	}
	for _, p := range s.patternPeriods {
		w := 80 / p
		if w < 1 {
			w = 1
		}
		b.Block(w, 10*p, 20*p,
			S(Pattern{Bits: patternBits(r, p), Noise: s.patternNoise}),
			S(Const{Taken: false}),
		)
	}
	// Tight kernels: small-trip loops and short patterns whose few history
	// contexts are revisited densely. Their tagged entries accumulate
	// visits quickly, so they reach the saturated state even under the
	// modified automaton's 1/128 throttle — the fast-saturating stable mass
	// behind the paper's large high-confidence Stag coverage.
	b.Block(14, 20, 60,
		S(Const{Taken: true}),
		S(Pattern{Bits: []bool{true, false}, Noise: s.patternNoise}),
		S(Const{Taken: false}),
		S(Pattern{Bits: []bool{false, true, true, true}, Noise: s.patternNoise}),
	)
	if len(s.patternPeriods) > 0 {
		// A contained block of moderately-noisy learnable branches: the
		// residually-unpredictable mass (~10% misprediction after learning)
		// that populates the paper's nearly-saturated tagged class. Kept in
		// its own block so its noise does not pollute the clean patterns'
		// history contexts.
		b.Block(9, 30, 80,
			S(Pattern{Bits: patternBits(r, 7), Noise: 0.065}),
			S(Const{Taken: true}),
			S(Pattern{Bits: patternBits(r, 12), Noise: 0.065}),
		)
	}
	if len(s.corrLags) > 0 {
		// The correlated site sits at position 3 of a 4-branch block body,
		// so a lag ≡ 0 (mod 4) would reference the site's own past outcomes
		// and turn the branch into an unlearnable LFSR-style recurrence,
		// and a lag ≡ 1 (mod 4) would reference the constant-direction
		// loop-glue bit. Remap every lag to hit the pattern neighbors
		// (positions 0 and 1), keeping the branch a pure — and therefore
		// learnable — function of bounded-entropy history.
		lags := make([]int, len(s.corrLags))
		for i, l := range s.corrLags {
			switch l % 4 {
			case 0:
				l += 2
			case 1:
				l++
			}
			lags[i] = l
		}
		maxLag := lags[len(lags)-1]
		w := 400 / maxLag
		if w < 1 {
			w = 1
		}
		rep := maxLag / 2
		if rep < 8 {
			rep = 8
		}
		b.Block(w, rep, 2*rep,
			S(Pattern{Bits: patternBits(r, 6), Noise: s.patternNoise / 2}),
			S(Pattern{Bits: patternBits(r, 10), Noise: s.patternNoise / 2}),
			S(Loop{Trip: 5}),
			S(Correlated{Lags: lags, Noise: s.corrNoise}),
		)
	}
	if len(s.biasedPs) > 0 {
		defs := make([]SiteDef, len(s.biasedPs))
		for i, p := range s.biasedPs {
			defs[i] = S(Biased{P: p})
		}
		w := s.biasedWeight
		if w <= 0 {
			w = 5
		}
		// Comparable activation mass to the structured blocks, so
		// biasedWeight meaningfully scales the trace's irreducible noise.
		b.Block(w, 20, 50, defs...)
	}
	for _, vl := range s.varLoops {
		b.Block(6, 3, 8,
			S(VarLoop{Min: vl[0], Max: vl[1]}),
			S(Const{Taken: true}),
		)
	}
	if s.phased {
		b.Block(6, 2, 6,
			S(Phased{
				Phases: []Behavior{Biased{P: 0.95}, Biased{P: 0.05}},
				Period: 9_000,
			}),
			S(Phased{
				Phases: []Behavior{Pattern{Bits: patternBits(r, 9)}, Biased{P: 0.72}},
				Period: 14_000,
			}),
			S(Const{Taken: true}),
		)
	}
	if s.footprintSites > 0 {
		// Server-style footprint: many static sites, hot/cold weight skew
		// (real instruction working sets are heavily skewed), direction skew
		// ~72% taken (conflicting aliases often still agree), and block
		// repetition so short-history tagged tables can patch bimodal
		// conflicts — mirroring how TAGE recovers server-trace accuracy once
		// capacity suffices.
		perBlock := 8
		nBlocks := (s.footprintSites + perBlock - 1) / perBlock
		bias := s.footprintBias
		if bias == 0 {
			bias = 0.97
		}
		gen := func(i int) SiteDef {
			switch {
			case i%29 == 7:
				return S(Biased{P: 0.84 + float64(i%4)*0.03})
			case i%7 == 2:
				return S(Biased{P: bias})
			case i%5 == 1:
				return S(Biased{P: 0.985})
			case i%23 == 11:
				return S(Biased{P: 1 - bias})
			default:
				// Constant direction with ~78% taken skew.
				return S(Const{Taken: i%27 < 21})
			}
		}
		b.Gap(4096)
		hot := nBlocks / 8
		if hot < 1 {
			hot = 1
		}
		warm := nBlocks / 3
		b.Footprint(hot, perBlock, 6, 2, 4, gen)
		b.Footprint(warm, perBlock, 2, 2, 4, func(i int) SiteDef { return gen(i + hot*perBlock) })
		rest := nBlocks - hot - warm
		if rest > 0 {
			b.Footprint(rest, perBlock, 1, 1, 3, func(i int) SiteDef { return gen(i + (hot+warm)*perBlock) })
		}
	}
	return b.MustBuild()
}

// cbp1Specs defines the 20 CBP-1-style traces: 5 floating-point, 5 integer,
// 5 multimedia, 5 server. Family characters follow the paper's Figures 2/5:
// FP is loop/pattern-dominated and highly predictable; INT mixes correlated
// and unpredictable work; MM is bursty and partly intrinsically
// unpredictable; SERV has a huge static footprint that thrashes the small
// predictor's bimodal table.
func cbp1Specs() []spec {
	var specs []spec
	for i := 1; i <= 5; i++ {
		specs = append(specs, spec{
			name:           fmt.Sprintf("FP-%d", i),
			seed:           0xF9_0000 + uint64(i),
			constWeight:    34,
			loopTrips:      []int{6 + 2*i, 21 + 5*i, 70 + 28*i},
			patternPeriods: []int{6 + i, 14 + 2*i, 30 + 4*i},
			biasedPs:       []float64{0.90, 0.78},
			biasedWeight:   2,
			patternNoise:   0.0005,
			varLoops:       [][2]int{{3, 6 + i}},
		})
	}
	for i := 1; i <= 5; i++ {
		fi := float64(i)
		sp := spec{
			name:           fmt.Sprintf("INT-%d", i),
			seed:           0x177_0000 + uint64(i),
			constWeight:    22 - 4*i, // INT-5 has the smallest BIM coverage in the paper
			loopTrips:      []int{4 + i, 12 + 3*i},
			patternPeriods: []int{5 + 2*i, 18 + 6*i},
			corrLags:       []int{3 + i, 11 + 4*i, 23 + 9*i},
			corrNoise:      0.008 * fi,
			biasedPs:       []float64{0.58 + 0.03*fi, 0.75, 0.88},
			biasedWeight:   3,
			patternNoise:   0.002,
			varLoops:       [][2]int{{2, 5 + i}},
			footprintSites: 220 * i,
			footprintBias:  0.975,
		}
		if sp.constWeight < 1 {
			sp.constWeight = 1
		}
		specs = append(specs, sp)
	}
	for i := 1; i <= 5; i++ {
		fi := float64(i)
		specs = append(specs, spec{
			name:           fmt.Sprintf("MM-%d", i),
			seed:           0x3333_0000 + uint64(i),
			constWeight:    20,
			loopTrips:      []int{8, 16 + 8*i},
			patternPeriods: []int{12 + 4*i, 40 + 10*i},
			biasedPs:       []float64{0.55 + 0.02*fi, 0.63, 0.7},
			biasedWeight:   1 + i, // MM-5 in the paper is largely unpredictable
			patternNoise:   0.003,
			phased:         true,
			varLoops:       [][2]int{{4, 10 + 2*i}},
		})
	}
	for i := 1; i <= 5; i++ {
		specs = append(specs, spec{
			name:           fmt.Sprintf("SERV-%d", i),
			seed:           0x5E4_0000 + uint64(i),
			constWeight:    10,
			loopTrips:      []int{5, 11},
			patternPeriods: []int{8},
			biasedPs:       []float64{0.68, 0.8},
			biasedWeight:   2,
			patternNoise:   0.0015,
			footprintSites: 1500 + 500*i,
			footprintBias:  0.98,
			phased:         i >= 4,
		})
	}
	return specs
}

// cbp2Specs defines the 20 CBP-2-style traces with the SPEC/JVM98 names the
// paper reports. Per-trace flavors follow the paper's remarks: twolf, gzip
// and vpr are largely intrinsically unpredictable; eon, vortex, raytrace,
// mpegaudio are highly predictable; mcf rewards very long histories; gcc,
// javac, perlbmk have large static footprints.
func cbp2Specs() []spec {
	return []spec{
		{
			name: "164.gzip", seed: 0xC2_0001,
			constWeight: 14, loopTrips: []int{7, 30},
			patternPeriods: []int{9},
			biasedPs:       []float64{0.56, 0.6, 0.65}, biasedWeight: 16,
			varLoops: [][2]int{{2, 9}},
		},
		{
			name: "175.vpr", seed: 0xC2_0002,
			constWeight: 12, loopTrips: []int{5, 18},
			patternPeriods: []int{11, 26},
			biasedPs:       []float64{0.56, 0.64, 0.6}, biasedWeight: 12,
			corrLags: []int{4, 13}, corrNoise: 0.06,
		},
		{
			name: "176.gcc", seed: 0xC2_0003,
			constWeight: 15, loopTrips: []int{4, 9, 22},
			patternPeriods: []int{7, 15},
			biasedPs:       []float64{0.78, 0.88}, biasedWeight: 3,
			footprintSites: 2600, footprintBias: 0.965,
			phased: true,
		},
		{
			name: "181.mcf", seed: 0xC2_0004,
			constWeight: 16, loopTrips: []int{35, 110, 230},
			patternPeriods: []int{21, 55},
			corrLags:       []int{17, 61, 140}, corrNoise: 0.03,
			biasedPs: []float64{0.6, 0.72}, biasedWeight: 14,
		},
		{
			name: "186.crafty", seed: 0xC2_0005,
			constWeight: 15, loopTrips: []int{6, 14},
			patternPeriods: []int{10, 34},
			corrLags:       []int{5, 19, 44}, corrNoise: 0.04,
			biasedPs: []float64{0.64, 0.78, 0.88}, biasedWeight: 7,
			footprintSites: 700, footprintBias: 0.96,
		},
		{
			name: "197.parser", seed: 0xC2_0006,
			constWeight: 14, loopTrips: []int{5, 12, 28},
			patternPeriods: []int{8, 19},
			corrLags:       []int{6, 23}, corrNoise: 0.05,
			biasedPs: []float64{0.63, 0.74}, biasedWeight: 7,
			footprintSites: 900, footprintBias: 0.965,
		},
		{
			name: "201.compress", seed: 0xC2_0007,
			constWeight: 20, loopTrips: []int{9, 40},
			patternPeriods: []int{6},
			biasedPs:       []float64{0.6, 0.68}, biasedWeight: 8,
			varLoops: [][2]int{{3, 12}},
		},
		{
			name: "202.jess", seed: 0xC2_0008,
			constWeight: 26, loopTrips: []int{5, 16},
			patternPeriods: []int{9, 13},
			biasedPs:       []float64{0.82, 0.9}, biasedWeight: 3,
			footprintSites: 500, footprintBias: 0.975,
		},
		{
			name: "205.raytrace", seed: 0xC2_0009,
			constWeight: 28, loopTrips: []int{8, 24, 64},
			patternPeriods: []int{7, 17},
			biasedPs:       []float64{0.9, 0.95}, biasedWeight: 2,
			varLoops: [][2]int{{4, 9}},
		},
		{
			name: "209.db", seed: 0xC2_000A,
			constWeight: 14, loopTrips: []int{6, 20},
			patternPeriods: []int{12},
			biasedPs:       []float64{0.66, 0.78}, biasedWeight: 4,
			footprintSites: 1400, footprintBias: 0.965,
		},
		{
			name: "213.javac", seed: 0xC2_000B,
			constWeight: 16, loopTrips: []int{5, 13},
			patternPeriods: []int{9, 22},
			biasedPs:       []float64{0.72, 0.84}, biasedWeight: 4,
			footprintSites: 1700, footprintBias: 0.965,
			phased: true,
		},
		{
			name: "222.mpegaudio", seed: 0xC2_000C,
			constWeight: 24, loopTrips: []int{12, 32, 96},
			patternPeriods: []int{8, 16, 36},
			biasedPs:       []float64{0.9}, biasedWeight: 2,
		},
		{
			name: "227.mtrt", seed: 0xC2_000D,
			constWeight: 25, loopTrips: []int{8, 26, 70},
			patternPeriods: []int{7, 18},
			biasedPs:       []float64{0.88, 0.94}, biasedWeight: 3,
			varLoops: [][2]int{{3, 8}},
		},
		{
			name: "228.jack", seed: 0xC2_000E,
			constWeight: 18, loopTrips: []int{6, 15},
			patternPeriods: []int{11, 25},
			biasedPs:       []float64{0.72, 0.82}, biasedWeight: 5,
			footprintSites: 800, footprintBias: 0.97,
		},
		{
			name: "252.eon", seed: 0xC2_000F,
			constWeight: 32, loopTrips: []int{6, 18, 48},
			patternPeriods: []int{5, 12},
			biasedPs:       []float64{0.97}, biasedWeight: 1,
		},
		{
			name: "253.perlbmk", seed: 0xC2_0010,
			constWeight: 15, loopTrips: []int{5, 11, 27},
			patternPeriods: []int{9, 20},
			biasedPs:       []float64{0.78, 0.88}, biasedWeight: 2,
			footprintSites: 1900, footprintBias: 0.965,
		},
		{
			name: "254.gap", seed: 0xC2_0011,
			constWeight: 18, loopTrips: []int{7, 21, 55},
			patternPeriods: []int{10},
			corrLags:       []int{8, 31}, corrNoise: 0.04,
			biasedPs: []float64{0.7, 0.8}, biasedWeight: 5,
		},
		{
			name: "255.vortex", seed: 0xC2_0012,
			constWeight: 30, loopTrips: []int{5, 14, 38},
			patternPeriods: []int{6, 13},
			biasedPs:       []float64{0.95}, biasedWeight: 1,
			footprintSites: 1100, footprintBias: 0.98,
		},
		{
			name: "256.bzip2", seed: 0xC2_0013,
			constWeight: 17, loopTrips: []int{10, 44},
			patternPeriods: []int{8},
			biasedPs:       []float64{0.58, 0.64, 0.7}, biasedWeight: 10,
			varLoops: [][2]int{{2, 10}},
		},
		{
			name: "300.twolf", seed: 0xC2_0014,
			constWeight: 10, loopTrips: []int{5, 15},
			patternPeriods: []int{13, 29},
			biasedPs:       []float64{0.54, 0.59, 0.64, 0.68}, biasedWeight: 20,
			corrLags: []int{6, 17}, corrNoise: 0.08,
		},
	}
}

func buildSuite(specs []spec) []trace.Trace {
	out := make([]trace.Trace, len(specs))
	for i, s := range specs {
		out[i] = buildSpec(s)
	}
	return out
}

// The standard suites are built once and shared: Programs are immutable
// after construction (every Open derives a fresh deterministic stream), and
// sharing the instances lets their exhausted-reader pools recycle state
// across suite runs — without it every Runner.Suite call would rebuild 20
// Programs and every Open would reallocate all per-site state.
var (
	suiteOnce [2]sync.Once
	suiteMem  [2][]trace.Trace
)

func cachedSuite(i int, specs func() []spec) []trace.Trace {
	suiteOnce[i].Do(func() { suiteMem[i] = buildSuite(specs()) })
	// Callers get a fresh slice header so appends/sorts cannot corrupt the
	// shared suite; the Trace instances themselves are shared.
	out := make([]trace.Trace, len(suiteMem[i]))
	copy(out, suiteMem[i])
	return out
}

// CBP1 returns the 20-trace synthetic stand-in for the first Championship
// Branch Prediction trace set.
func CBP1() []trace.Trace { return cachedSuite(0, cbp1Specs) }

// CBP2 returns the 20-trace synthetic stand-in for the second Championship
// Branch Prediction trace set.
func CBP2() []trace.Trace { return cachedSuite(1, cbp2Specs) }

// All returns every trace of both suites (CBP-1 then CBP-2), the
// whole-corpus axis load generators and census-style experiments replay.
func All() []trace.Trace { return append(CBP1(), CBP2()...) }

// SuiteNames lists the standard suite identifiers (the experiment grids
// iterate these; Suite additionally accepts "all", their union).
func SuiteNames() []string { return []string{"cbp1", "cbp2"} }

// Suite returns a suite by name ("cbp1", "cbp2" or "all").
func Suite(name string) ([]trace.Trace, error) {
	switch name {
	case "cbp1", "CBP1", "cbp-1":
		return CBP1(), nil
	case "cbp2", "CBP2", "cbp-2":
		return CBP2(), nil
	case "all", "ALL":
		return All(), nil
	default:
		return nil, fmt.Errorf("workload: unknown suite %q (valid suites: %s)",
			name, strings.Join(append(SuiteNames(), "all"), ", "))
	}
}

// ByName returns the named trace from either suite. Unknown names error
// with the full list of valid trace names.
func ByName(name string) (trace.Trace, error) {
	for _, t := range CBP1() {
		if t.Name() == name {
			return t, nil
		}
	}
	for _, t := range CBP2() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown trace %q (valid traces: %s)",
		name, strings.Join(TraceNames(), ", "))
}

// TraceNames returns the sorted names of all 40 traces.
func TraceNames() []string {
	var names []string
	for _, t := range CBP1() {
		names = append(names, t.Name())
	}
	for _, t := range CBP2() {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}
