// Package workload synthesizes deterministic branch traces that stand in
// for the CBP-1 and CBP-2 championship trace sets used by the paper (the
// originals are not redistributable; see DESIGN.md §2).
//
// A workload is a Program: a set of static branch Sites, each with a
// Behavior (loop, biased-random, periodic pattern, history-correlated,
// phased, ...), scheduled through weighted blocks with loop-style
// repetition so the emitted stream has the temporal locality of real code.
// Programs implement trace.Trace and replay identically on every pass.
//
// The behavior archetypes are chosen to exercise exactly the mechanisms
// that produce the paper's confidence classes: stable loops and patterns
// populate the saturated tagged class (Stag) and the high-confidence
// bimodal class; biased-random branches populate the weak/nearly-weak
// tagged classes; long-lag correlated branches separate the 16/64/256 Kbit
// configurations by history reach and capacity; and large static footprints
// plus phase changes create the bimodal-provider misprediction bursts
// behind the medium-conf-bim class.
package workload

import (
	"repro/internal/history"
	"repro/internal/xrand"
)

// Env is the execution environment a behavior instance sees: its private
// random stream and the global outcome history of the whole program (for
// correlated branches).
type Env struct {
	// Rand is the site's private deterministic stream.
	Rand *xrand.Rand
	hist *history.Buffer
}

// HistBit returns the outcome of the branch executed i+1 branches before
// the current one (i = 0 is the immediately preceding branch).
func (e *Env) HistBit(i int) bool { return e.hist.Bit(i) != 0 }

// A Behavior describes the outcome law of one static branch. New returns a
// fresh stateful Instance for one trace pass; instances from separate
// passes never share state, which keeps traces replayable.
type Behavior interface {
	New(r *xrand.Rand) Instance
}

// An Instance produces the successive outcomes of one static branch within
// one trace pass.
type Instance interface {
	Next(env *Env) bool
}

// Resettable is an optional Instance extension: Reset(r) must leave the
// instance in exactly the state Behavior.New(r) would have produced, given
// an identically-seeded r. Pooled trace readers use it to replay a trace
// without reallocating per-site state; instances that do not implement it
// are rebuilt through Behavior.New on every pass.
type Resettable interface {
	Reset(r *xrand.Rand)
}

// Const is a branch that always resolves in the same direction
// (loop-closing unconditional-like branches, guards that never fire).
type Const struct{ Taken bool }

// New implements Behavior.
func (c Const) New(*xrand.Rand) Instance { return constInst{c.Taken} }

type constInst struct{ taken bool }

func (c constInst) Next(*Env) bool { return c.taken }

func (c constInst) Reset(*xrand.Rand) {}

// Loop models a loop back-edge with a fixed trip count: taken Trip-1 times,
// then not-taken once, repeatedly. Trip must be at least 1; Trip == 1 is a
// never-taken branch.
type Loop struct{ Trip int }

// New implements Behavior.
func (l Loop) New(*xrand.Rand) Instance {
	trip := l.Trip
	if trip < 1 {
		trip = 1
	}
	return &loopInst{trip: trip}
}

type loopInst struct {
	trip  int
	count int
}

func (l *loopInst) Next(*Env) bool {
	l.count++
	if l.count >= l.trip {
		l.count = 0
		return false
	}
	return true
}

func (l *loopInst) Reset(*xrand.Rand) { l.count = 0 }

// VarLoop is a loop whose trip count is redrawn uniformly in [Min, Max] for
// each loop instance — predictable within an instance, unpredictable at the
// exit unless the predictor can see the iteration count in the history.
type VarLoop struct{ Min, Max int }

// New implements Behavior.
func (v VarLoop) New(r *xrand.Rand) Instance {
	lo, hi := v.Min, v.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	inst := &varLoopInst{min: lo, max: hi, r: r}
	inst.redraw()
	return inst
}

type varLoopInst struct {
	min, max int
	trip     int
	count    int
	r        *xrand.Rand
}

func (v *varLoopInst) redraw() {
	v.trip = v.min + v.r.Intn(v.max-v.min+1)
}

func (v *varLoopInst) Next(*Env) bool {
	v.count++
	if v.count >= v.trip {
		v.count = 0
		v.redraw()
		return false
	}
	return true
}

func (v *varLoopInst) Reset(r *xrand.Rand) {
	v.r = r
	v.count = 0
	v.redraw()
}

// Biased is a branch taken with independent probability P per execution —
// the intrinsically unpredictable archetype. P near 0 or 1 gives an easy
// branch; P near 0.5 gives a ~50% misprediction floor for any predictor.
type Biased struct{ P float64 }

// New implements Behavior.
func (b Biased) New(*xrand.Rand) Instance { return biasedInst{p: b.P} }

type biasedInst struct{ p float64 }

func (b biasedInst) Next(env *Env) bool { return env.Rand.WithProbability(b.p) }

func (b biasedInst) Reset(*xrand.Rand) {}

// Pattern replays a fixed periodic outcome sequence, optionally flipping
// each outcome with independent probability Noise. A predictor whose
// history window covers one period learns the noise-free pattern
// perfectly; the bimodal base table alone cannot (unless the pattern is
// constant). Noise models the residual unpredictability real "regular"
// branches exhibit — it is what keeps well-learned branches from being
// perfectly clean in the saturated-counter class.
type Pattern struct {
	Bits  []bool
	Noise float64
}

// New implements Behavior.
func (p Pattern) New(*xrand.Rand) Instance {
	bits := p.Bits
	if len(bits) == 0 {
		bits = []bool{true}
	}
	return &patternInst{bits: bits, noise: p.Noise}
}

type patternInst struct {
	bits  []bool
	pos   int
	noise float64
}

func (p *patternInst) Next(env *Env) bool {
	v := p.bits[p.pos]
	p.pos++
	if p.pos == len(p.bits) {
		p.pos = 0
	}
	if p.noise > 0 && env.Rand.WithProbability(p.noise) {
		v = !v
	}
	return v
}

func (p *patternInst) Reset(*xrand.Rand) { p.pos = 0 }

// Correlated resolves as the XOR of earlier global branch outcomes at the
// given lags (in branches), optionally inverted, with independent noise
// flips at probability Noise. With Noise == 0 the branch is a deterministic
// function of the last max(Lags)+1 history bits: a predictor whose history
// length and table capacity reach that far can learn it, which is what
// separates the small, medium and large TAGE configurations.
type Correlated struct {
	Lags   []int
	Invert bool
	Noise  float64
}

// New implements Behavior.
func (c Correlated) New(*xrand.Rand) Instance {
	lags := c.Lags
	if len(lags) == 0 {
		lags = []int{1}
	}
	return &correlatedInst{lags: lags, invert: c.Invert, noise: c.Noise}
}

type correlatedInst struct {
	lags   []int
	invert bool
	noise  float64
}

func (c *correlatedInst) Next(env *Env) bool {
	v := c.invert
	for _, lag := range c.lags {
		if env.HistBit(lag - 1) {
			v = !v
		}
	}
	if c.noise > 0 && env.Rand.WithProbability(c.noise) {
		v = !v
	}
	return v
}

func (c *correlatedInst) Reset(*xrand.Rand) {}

// Phased cycles through sub-behaviors, switching every Period executions.
// It models program phases: each switch invalidates what the predictor
// learned, producing the warmup / burst mispredictions behind the paper's
// medium-conf-bim class.
type Phased struct {
	Phases []Behavior
	Period int
}

// New implements Behavior.
func (p Phased) New(r *xrand.Rand) Instance {
	period := p.Period
	if period < 1 {
		period = 1
	}
	if len(p.Phases) == 0 {
		return constInst{true}
	}
	inst := &phasedInst{
		specs:  p.Phases,
		phases: make([]Instance, len(p.Phases)),
		rands:  make([]xrand.Rand, len(p.Phases)),
		period: period,
	}
	for i, b := range p.Phases {
		r.DeriveInto(uint64(i), &inst.rands[i])
		inst.phases[i] = b.New(&inst.rands[i])
	}
	return inst
}

type phasedInst struct {
	specs  []Behavior
	phases []Instance
	rands  []xrand.Rand // per-phase derived streams, recycled by Reset
	period int
	count  int
	cur    int
}

func (p *phasedInst) Next(env *Env) bool {
	v := p.phases[p.cur].Next(env)
	p.count++
	if p.count >= p.period {
		p.count = 0
		p.cur++
		if p.cur == len(p.phases) {
			p.cur = 0
		}
	}
	return v
}

func (p *phasedInst) Reset(r *xrand.Rand) {
	p.count, p.cur = 0, 0
	for i, b := range p.specs {
		r.DeriveInto(uint64(i), &p.rands[i])
		if res, ok := p.phases[i].(Resettable); ok {
			res.Reset(&p.rands[i])
		} else {
			p.phases[i] = b.New(&p.rands[i])
		}
	}
}

// Markov is a two-state burst process: the branch alternates between a
// "hot" regime (taken with probability PHot) and a "cold" regime (taken
// with probability PCold), switching regime with probability Switch per
// execution. It models bursty data-dependent branches whose bias drifts
// over time — a milder, continuous version of Phased, useful for
// populating the medium-confidence classes with realistic burst
// mispredictions.
type Markov struct {
	PHot, PCold float64
	// Switch is the per-execution regime-flip probability (clamped to
	// (0, 1]; 0 selects 1/1000).
	Switch float64
}

// New implements Behavior.
func (m Markov) New(*xrand.Rand) Instance {
	sw := m.Switch
	if sw <= 0 {
		sw = 0.001
	}
	if sw > 1 {
		sw = 1
	}
	return &markovInst{pHot: m.PHot, pCold: m.PCold, sw: sw, hot: true}
}

type markovInst struct {
	pHot, pCold float64
	sw          float64
	hot         bool
}

func (m *markovInst) Next(env *Env) bool {
	if env.Rand.WithProbability(m.sw) {
		m.hot = !m.hot
	}
	p := m.pCold
	if m.hot {
		p = m.pHot
	}
	return env.Rand.WithProbability(p)
}

func (m *markovInst) Reset(*xrand.Rand) { m.hot = true }

// LocalPattern is a branch whose outcome depends on its own last k
// outcomes through a fixed boolean rule (an LFSR-style recurrence),
// yielding long pseudo-periodic local patterns that global-history
// predictors capture only with sufficient history and capacity.
type LocalPattern struct {
	// Taps are offsets (in this branch's own executions) XORed together to
	// form the next outcome. Offset 1 is the previous execution.
	Taps []int
	// SeedBits initializes the local history (defaults to a fixed pattern).
	SeedBits []bool
}

// New implements Behavior.
func (l LocalPattern) New(*xrand.Rand) Instance {
	taps := l.Taps
	if len(taps) == 0 {
		taps = []int{1, 2}
	}
	max := 0
	for _, t := range taps {
		if t > max {
			max = t
		}
	}
	inst := &localPatternInst{taps: taps, hist: make([]bool, max), init: make([]bool, max)}
	for i := range inst.init {
		if i < len(l.SeedBits) {
			inst.init[i] = l.SeedBits[i]
		} else {
			inst.init[i] = i%3 == 0
		}
	}
	copy(inst.hist, inst.init)
	return inst
}

type localPatternInst struct {
	taps []int
	hist []bool // hist[0] = most recent own outcome
	init []bool // seed state restored by Reset
}

func (l *localPatternInst) Next(*Env) bool {
	v := false
	for _, t := range l.taps {
		if l.hist[t-1] {
			v = !v
		}
	}
	copy(l.hist[1:], l.hist)
	l.hist[0] = v
	return v
}

func (l *localPatternInst) Reset(*xrand.Rand) { copy(l.hist, l.init) }
