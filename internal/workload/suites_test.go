package workload

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestSuitesHave20TracesEach(t *testing.T) {
	if got := len(CBP1()); got != 20 {
		t.Fatalf("CBP1 has %d traces, want 20", got)
	}
	if got := len(CBP2()); got != 20 {
		t.Fatalf("CBP2 has %d traces, want 20", got)
	}
}

func TestSuiteFamilies(t *testing.T) {
	counts := map[string]int{}
	for _, tr := range CBP1() {
		fam := strings.Split(tr.Name(), "-")[0]
		counts[fam]++
	}
	for _, fam := range []string{"FP", "INT", "MM", "SERV"} {
		if counts[fam] != 5 {
			t.Errorf("family %s has %d traces, want 5", fam, counts[fam])
		}
	}
}

func TestCBP2PaperNames(t *testing.T) {
	want := []string{
		"164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
		"197.parser", "201.compress", "202.jess", "205.raytrace", "209.db",
		"213.javac", "222.mpegaudio", "227.mtrt", "228.jack", "252.eon",
		"253.perlbmk", "254.gap", "255.vortex", "256.bzip2", "300.twolf",
	}
	got := CBP2()
	for i, name := range want {
		if got[i].Name() != name {
			t.Fatalf("CBP2[%d] = %q, want %q", i, got[i].Name(), name)
		}
	}
}

func TestAllTracesValidateAndStream(t *testing.T) {
	for _, tr := range append(CBP1(), CBP2()...) {
		p, ok := tr.(*Program)
		if !ok {
			t.Fatalf("%s is not a *Program", tr.Name())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tr.Name(), err)
		}
		recs, err := trace.Collect(trace.Limit(tr, 2000))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if len(recs) != 2000 {
			t.Fatalf("%s produced %d records", tr.Name(), len(recs))
		}
	}
}

func TestTraceStatisticalCharacter(t *testing.T) {
	// Sanity band: taken rates should be mid-range (not degenerate), and
	// server traces must have much larger static footprints than FP traces.
	measure := func(tr trace.Trace) trace.Stats {
		s, err := trace.Measure(trace.Limit(tr, 30000))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		return s
	}
	var fpPCs, servPCs int
	for _, tr := range CBP1() {
		s := measure(tr)
		if s.TakenRate() < 0.15 || s.TakenRate() > 0.9 {
			t.Errorf("%s taken rate %.2f out of sanity band", tr.Name(), s.TakenRate())
		}
		if s.InstrPerBranch() < 2 || s.InstrPerBranch() > 10 {
			t.Errorf("%s instructions/branch %.2f out of band", tr.Name(), s.InstrPerBranch())
		}
		if strings.HasPrefix(tr.Name(), "FP-") {
			fpPCs += s.UniquePCs
		}
		if strings.HasPrefix(tr.Name(), "SERV-") {
			servPCs += s.UniquePCs
		}
	}
	if servPCs < 4*fpPCs {
		t.Errorf("server static footprint (%d PCs) should dwarf FP (%d PCs)", servPCs, fpPCs)
	}
}

func TestSuiteLookup(t *testing.T) {
	for _, name := range []string{"cbp1", "CBP1", "cbp-1", "cbp2", "CBP2", "cbp-2", "all"} {
		if _, err := Suite(name); err != nil {
			t.Errorf("Suite(%q) failed: %v", name, err)
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 40 {
		t.Fatalf("All() returned %d traces, want 40", len(all))
	}
	if all[0].Name() != "FP-1" || all[39].Name() != "300.twolf" {
		t.Fatalf("All() order wrong: first %q last %q", all[0].Name(), all[39].Name())
	}
	// All must hand out a fresh slice header over the shared instances.
	all[0] = nil
	if All()[0] == nil {
		t.Fatal("All() shares its backing array with callers")
	}
}

func TestByName(t *testing.T) {
	tr, err := ByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "300.twolf" {
		t.Fatalf("got %q", tr.Name())
	}
	tr, err = ByName("SERV-3")
	if err != nil || tr.Name() != "SERV-3" {
		t.Fatalf("SERV-3 lookup: %v %v", tr, err)
	}
	if _, err := ByName("777.nothing"); err == nil {
		t.Fatal("unknown trace should error")
	}
}

func TestTraceNamesSortedUnique(t *testing.T) {
	names := TraceNames()
	if len(names) != 40 {
		t.Fatalf("TraceNames has %d entries, want 40", len(names))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Fatalf("duplicate trace name %q", n)
		}
		seen[n] = true
		if i > 0 && names[i-1] > n {
			t.Fatalf("names not sorted at %d: %q > %q", i, names[i-1], n)
		}
	}
}

func TestSuiteSeedsAreDistinct(t *testing.T) {
	seeds := map[uint64]string{}
	for _, s := range append(cbp1Specs(), cbp2Specs()...) {
		if prev, dup := seeds[s.seed]; dup {
			t.Fatalf("seed %#x shared by %s and %s", s.seed, prev, s.name)
		}
		seeds[s.seed] = s.name
	}
}

func TestSuiteTracesReplayIdentically(t *testing.T) {
	for _, tr := range []trace.Trace{CBP1()[0], CBP2()[19]} {
		a, _ := trace.Collect(trace.Limit(tr, 5000))
		b, _ := trace.Collect(trace.Limit(tr, 5000))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s replay diverged at %d", tr.Name(), i)
			}
		}
	}
}

func TestPatternBitsNotDegenerate(t *testing.T) {
	r := newEnv(123).Rand
	for period := 2; period < 64; period++ {
		bits := patternBits(r, period)
		if len(bits) != period {
			t.Fatalf("period %d: got %d bits", period, len(bits))
		}
		ones := 0
		for _, b := range bits {
			if b {
				ones++
			}
		}
		if ones == 0 || ones == period {
			t.Fatalf("period %d: degenerate constant pattern", period)
		}
	}
}

func BenchmarkProgramGeneration(b *testing.B) {
	tr := CBP1()[0]
	r := tr.Open()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			r = tr.Open()
		}
	}
}
