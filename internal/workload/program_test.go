package workload

import (
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

func tinyProgram() *Program {
	return NewBuilder("tiny", 42).
		SetLength(1000).
		Block(10, 2, 4,
			S(Loop{Trip: 3}),
			S(Const{Taken: true}),
		).
		Block(5, 1, 2,
			S(Biased{P: 0.7}),
		).
		MustBuild()
}

func TestProgramImplementsTrace(t *testing.T) {
	var _ trace.Trace = tinyProgram()
}

func TestProgramLength(t *testing.T) {
	p := tinyProgram()
	recs, err := trace.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1000 {
		t.Fatalf("got %d records, want 1000", len(recs))
	}
}

func TestProgramReplayIdentical(t *testing.T) {
	p := tinyProgram()
	a, _ := trace.Collect(p)
	b, _ := trace.Collect(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProgramSeedsDiffer(t *testing.T) {
	p1 := NewBuilder("a", 1).SetLength(500).
		Block(1, 1, 1, S(Biased{P: 0.5})).MustBuild()
	p2 := NewBuilder("a", 2).SetLength(500).
		Block(1, 1, 1, S(Biased{P: 0.5})).MustBuild()
	a, _ := trace.Collect(p1)
	b, _ := trace.Collect(p2)
	same := 0
	for i := range a {
		if a[i].Taken == b[i].Taken {
			same++
		}
	}
	if same > 450 {
		t.Fatalf("different seeds produced nearly identical outcome streams (%d/500 equal)", same)
	}
}

func TestProgramRecordFields(t *testing.T) {
	recs, _ := trace.Collect(tinyProgram())
	pcs := map[uint64]bool{}
	for i, r := range recs {
		if r.Instr < 1 {
			t.Fatalf("record %d has zero instruction count", i)
		}
		if r.PC == 0 {
			t.Fatalf("record %d has zero PC", i)
		}
		pcs[r.PC] = true
	}
	// tiny program has 3 sites.
	if len(pcs) != 3 {
		t.Fatalf("distinct PCs = %d, want 3", len(pcs))
	}
}

func TestProgramDefaultLength(t *testing.T) {
	p := NewBuilder("d", 3).
		Block(1, 1, 1, S(Const{Taken: true})).
		MustBuild()
	r := p.Open()
	n := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		n++
		if n > DefaultLength {
			t.Fatal("stream exceeded DefaultLength")
		}
	}
	if n != DefaultLength {
		t.Fatalf("default length = %d, want %d", n, DefaultLength)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	valid := tinyProgram()
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"no sites", func(p *Program) { p.Sites = nil }},
		{"no blocks", func(p *Program) { p.Blocks = nil }},
		{"empty block", func(p *Program) { p.Blocks[0].Sites = nil }},
		{"bad site index", func(p *Program) { p.Blocks[0].Sites = []int{99} }},
		{"negative site index", func(p *Program) { p.Blocks[0].Sites = []int{-1} }},
		{"zero weight total", func(p *Program) {
			for i := range p.Blocks {
				p.Blocks[i].Weight = 0
			}
		}},
		{"negative weight", func(p *Program) { p.Blocks[0].Weight = -1 }},
		{"bad reps", func(p *Program) { p.Blocks[0].MinRep = 0 }},
		{"maxRep < minRep", func(p *Program) { p.Blocks[0].MaxRep = p.Blocks[0].MinRep - 1 }},
		{"nil behavior", func(p *Program) { p.Sites[0].Behavior = nil }},
	}
	for _, c := range cases {
		// Copy the spec fields explicitly: Program embeds a reader pool and
		// must not be copied wholesale.
		p := Program{ProgName: valid.ProgName, Seed: valid.Seed, Length: valid.Length}
		p.Sites = append([]Site(nil), valid.Sites...)
		p.Blocks = make([]Block, len(valid.Blocks))
		for i, b := range valid.Blocks {
			p.Blocks[i] = b
			p.Blocks[i].Sites = append([]int(nil), b.Sites...)
		}
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate did not catch the error", c.name)
		}
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestOpenPanicsOnInvalid(t *testing.T) {
	p := &Program{ProgName: "broken"}
	defer func() {
		if recover() == nil {
			t.Fatal("Open on invalid program should panic")
		}
	}()
	p.Open()
}

func TestBuilderAssignsDistinctAlignedPCs(t *testing.T) {
	b := NewBuilder("pcs", 7)
	for i := 0; i < 10; i++ {
		b.Block(1, 1, 1, S(Const{Taken: true}), S(Const{Taken: false}))
	}
	p := b.MustBuild()
	seen := map[uint64]bool{}
	for _, s := range p.Sites {
		if s.PC%4 != 0 {
			t.Fatalf("PC %#x not 4-byte aligned", s.PC)
		}
		if seen[s.PC] {
			t.Fatalf("duplicate PC %#x", s.PC)
		}
		seen[s.PC] = true
	}
}

func TestBuilderGapSpreadsAddresses(t *testing.T) {
	b := NewBuilder("gap", 8)
	b.Block(1, 1, 1, S(Const{Taken: true}))
	b.Gap(1 << 20)
	b.Block(1, 1, 1, S(Const{Taken: true}))
	p := b.MustBuild()
	if p.Sites[1].PC-p.Sites[0].PC < 1<<20 {
		t.Fatalf("gap not applied: %#x .. %#x", p.Sites[0].PC, p.Sites[1].PC)
	}
}

func TestBuilderFootprint(t *testing.T) {
	b := NewBuilder("fp", 9)
	calls := 0
	b.Footprint(5, 4, 1, 1, 2, func(i int) SiteDef {
		calls++
		return S(Biased{P: 0.9})
	})
	p := b.MustBuild()
	if calls != 20 {
		t.Fatalf("generator called %d times, want 20", calls)
	}
	if len(p.Sites) != 20 || len(p.Blocks) != 5 {
		t.Fatalf("footprint shape: %d sites, %d blocks", len(p.Sites), len(p.Blocks))
	}
}

func TestBuildErrorPropagates(t *testing.T) {
	b := NewBuilder("bad", 10) // no blocks
	if _, err := b.Build(); err == nil {
		t.Fatal("Build on empty program should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on error")
		}
	}()
	NewBuilder("bad2", 11).MustBuild()
}

func TestSIHelper(t *testing.T) {
	d := SI(Const{Taken: true}, 9)
	if d.Instr != 9 {
		t.Fatalf("SI instr = %d", d.Instr)
	}
	p := NewBuilder("si", 12).SetLength(10).
		Block(1, 1, 1, SI(Const{Taken: true}, 9)).MustBuild()
	recs, _ := trace.Collect(p)
	for _, r := range recs {
		if r.Instr != 9 {
			t.Fatalf("explicit instruction gap not honored: %d", r.Instr)
		}
	}
}

func TestBlockRepetitionLocality(t *testing.T) {
	// With one high-weight block repeated 5..10 times, consecutive records
	// must come in runs from that block's sites.
	p := NewBuilder("loc", 13).SetLength(2000).
		Block(100, 5, 10, S(Const{Taken: true}), S(Const{Taken: false})).
		Block(1, 1, 1, S(Biased{P: 0.5})).
		MustBuild()
	recs, _ := trace.Collect(p)
	sitePCs := map[uint64]int{}
	for i, s := range p.Sites {
		sitePCs[s.PC] = i
	}
	// The hot block's two sites must alternate strictly within activations.
	hot := 0
	for i := 1; i < len(recs); i++ {
		a, b := sitePCs[recs[i-1].PC], sitePCs[recs[i].PC]
		if a == 0 && b == 1 {
			hot++
		}
	}
	if hot < 500 {
		t.Fatalf("expected strong block locality, saw only %d hot-pair transitions", hot)
	}
}

func TestWeightBiasesSchedule(t *testing.T) {
	p := NewBuilder("w", 14).SetLength(30000).
		Block(9, 1, 1, S(Const{Taken: true})).
		Block(1, 1, 1, S(Const{Taken: false})).
		MustBuild()
	recs, _ := trace.Collect(p)
	taken := 0
	for _, r := range recs {
		if r.Taken {
			taken++
		}
	}
	frac := float64(taken) / float64(len(recs))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("weight-9 block fraction = %v, want ~0.9", frac)
	}
}
