package workload

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// histCapacity bounds the lags correlated behaviors may use.
const histCapacity = 512

// DefaultLength is the number of branch records per trace pass when a
// Program does not specify one.
const DefaultLength = 1_000_000

// Site is one static conditional branch of a Program.
type Site struct {
	// PC is the branch address.
	PC uint64
	// Behavior is the outcome law.
	Behavior Behavior
	// Instr is the number of dynamic instructions the branch record
	// accounts for (the branch plus preceding non-branch instructions).
	// Must be >= 1; Build defaults it to 5.
	Instr uint32
}

// Block is a weighted schedulable unit: a run of sites executed in order.
// When activated, the block body executes between MinRep and MaxRep times
// consecutively, giving the stream loop-style temporal locality.
type Block struct {
	Sites          []int
	Weight         int
	MinRep, MaxRep int
}

// Program is a synthetic workload implementing trace.Trace. All randomness
// derives from Seed, so every Open replays the identical stream.
//
// Exhausted readers are recycled through an internal pool: a reader returns
// itself when it reports io.EOF (or is released early by trace.Limit), and
// the next Open reuses its site/instance storage after a deterministic
// reset, so repeated passes over the same Program allocate nothing in
// steady state. A Program must not be copied after its first Open, and a
// Reader must not be used again once it has returned io.EOF.
type Program struct {
	ProgName string
	Seed     uint64
	Sites    []Site
	Blocks   []Block
	// Length is the number of branch records per pass (DefaultLength if 0).
	Length uint64

	readers sync.Pool // recycled *progReader state
}

// Name implements trace.Trace.
func (p *Program) Name() string { return p.ProgName }

// Validate checks structural invariants: at least one block with positive
// weight, all site indices in range, sane repetition bounds.
func (p *Program) Validate() error {
	if len(p.Sites) == 0 {
		return fmt.Errorf("workload %s: no sites", p.ProgName)
	}
	if len(p.Blocks) == 0 {
		return fmt.Errorf("workload %s: no blocks", p.ProgName)
	}
	totalWeight := 0
	for bi, b := range p.Blocks {
		if len(b.Sites) == 0 {
			return fmt.Errorf("workload %s: block %d empty", p.ProgName, bi)
		}
		if b.Weight < 0 {
			return fmt.Errorf("workload %s: block %d negative weight", p.ProgName, bi)
		}
		totalWeight += b.Weight
		if b.MinRep < 1 || b.MaxRep < b.MinRep {
			return fmt.Errorf("workload %s: block %d bad repetition bounds [%d,%d]",
				p.ProgName, bi, b.MinRep, b.MaxRep)
		}
		for _, si := range b.Sites {
			if si < 0 || si >= len(p.Sites) {
				return fmt.Errorf("workload %s: block %d references site %d of %d",
					p.ProgName, bi, si, len(p.Sites))
			}
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("workload %s: total block weight is zero", p.ProgName)
	}
	for si, s := range p.Sites {
		if s.Behavior == nil {
			return fmt.Errorf("workload %s: site %d has no behavior", p.ProgName, si)
		}
	}
	return nil
}

// Open implements trace.Trace.
func (p *Program) Open() trace.Reader {
	if err := p.Validate(); err != nil {
		// A malformed Program is a programming error in a recipe, caught by
		// the suite tests; fail loudly rather than emit a corrupt stream.
		panic(err)
	}
	if v := p.readers.Get(); v != nil {
		r := v.(*progReader)
		r.reset()
		return r
	}
	root := xrand.New(p.Seed)
	r := &progReader{
		prog: p,
		root: *root,
		env: Env{
			hist: history.NewBuffer(histCapacity),
		},
		length: p.Length,
	}
	root.DeriveInto(0xB10C, &r.sched)
	if r.length == 0 {
		r.length = DefaultLength
	}
	r.instances = make([]Instance, len(p.Sites))
	r.siteRands = make([]xrand.Rand, len(p.Sites))
	r.instRands = make([]xrand.Rand, len(p.Sites))
	for i, s := range p.Sites {
		root.DeriveInto(0x517E0000+uint64(i), &r.siteRands[i])
		r.siteRands[i].DeriveInto(1, &r.instRands[i])
		r.instances[i] = s.Behavior.New(&r.instRands[i])
	}
	r.cumWeights = make([]int, len(p.Blocks))
	sum := 0
	for i, b := range p.Blocks {
		sum += b.Weight
		r.cumWeights[i] = sum
	}
	r.totalWeight = sum
	return r
}

type progReader struct {
	prog        *Program
	root        xrand.Rand // seeded from Program.Seed; never advanced
	sched       xrand.Rand
	env         Env
	instances   []Instance
	siteRands   []xrand.Rand // per-site streams handed to Env.Rand
	instRands   []xrand.Rand // per-site streams handed to Behavior.New/Reset
	cumWeights  []int
	totalWeight int

	curBlock int
	queuePos int // position within current block's site list
	inBlock  bool
	repsLeft int

	emitted uint64
	length  uint64
	closed  bool // returned to the pool; every later Next is io.EOF
}

// reset restores a recycled reader to the state a fresh Open constructs,
// re-deriving every random stream in place (root never advances, so the
// derivations are bit-identical to construction) and resetting or — for
// behaviors that do not implement Resettable — rebuilding site instances.
func (r *progReader) reset() {
	p := r.prog
	r.root.DeriveInto(0xB10C, &r.sched)
	r.env.hist.Reset()
	r.env.Rand = nil
	for i, s := range p.Sites {
		r.root.DeriveInto(0x517E0000+uint64(i), &r.siteRands[i])
		r.siteRands[i].DeriveInto(1, &r.instRands[i])
		if res, ok := r.instances[i].(Resettable); ok {
			res.Reset(&r.instRands[i])
		} else {
			r.instances[i] = s.Behavior.New(&r.instRands[i])
		}
	}
	r.curBlock, r.queuePos, r.inBlock, r.repsLeft = 0, 0, false, 0
	r.emitted = 0
	r.closed = false
}

// release returns the reader to its Program's pool. Later Nexts on this
// handle report io.EOF; the handle must not be retained past that point.
func (r *progReader) release() {
	if r.closed {
		return
	}
	r.closed = true
	r.prog.readers.Put(r)
}

// Close implements the early-release hook trace.Limit probes for, so
// truncated passes recycle their reader state too.
func (r *progReader) Close() { r.release() }

func (r *progReader) pickBlock() int {
	w := r.sched.Intn(r.totalWeight)
	// Linear scan: block counts are small (tens), and the scan order is
	// deterministic.
	for i, cw := range r.cumWeights {
		if w < cw {
			return i
		}
	}
	return len(r.cumWeights) - 1
}

func (r *progReader) Next() (trace.Branch, error) {
	if r.closed {
		return trace.Branch{}, io.EOF
	}
	if r.emitted >= r.length {
		r.release()
		return trace.Branch{}, io.EOF
	}
	if !r.inBlock {
		if r.repsLeft > 0 {
			r.repsLeft--
		} else {
			r.curBlock = r.pickBlock()
			b := &r.prog.Blocks[r.curBlock]
			r.repsLeft = b.MinRep + r.sched.Intn(b.MaxRep-b.MinRep+1) - 1
		}
		r.queuePos = 0
		r.inBlock = true
	}
	block := &r.prog.Blocks[r.curBlock]
	siteIdx := block.Sites[r.queuePos]
	r.queuePos++
	if r.queuePos >= len(block.Sites) {
		r.inBlock = false
	}
	site := &r.prog.Sites[siteIdx]
	r.env.Rand = &r.siteRands[siteIdx]
	taken := r.instances[siteIdx].Next(&r.env)
	r.env.hist.Push(taken)
	r.emitted++
	instr := site.Instr
	if instr == 0 {
		instr = 5
	}
	return trace.Branch{PC: site.PC, Taken: taken, Instr: instr}, nil
}

// Builder assembles a Program from behavior specs, assigning branch
// addresses automatically so that static footprint grows with the number of
// sites (which is what creates bimodal aliasing pressure on the small
// predictor, as in the paper's server traces).
type Builder struct {
	prog      *Program
	nextPC    uint64
	buildRand *xrand.Rand
}

// NewBuilder starts a Program with the given name and master seed.
func NewBuilder(name string, seed uint64) *Builder {
	return &Builder{
		prog: &Program{
			ProgName: name,
			Seed:     seed,
		},
		nextPC:    0x0040_0000,
		buildRand: xrand.New(xrand.Mix64(seed ^ 0xBEEF)),
	}
}

// SetLength sets the records-per-pass length of the program.
func (b *Builder) SetLength(n uint64) *Builder {
	b.prog.Length = n
	return b
}

// SiteDef pairs a behavior with its instruction gap for Block.
type SiteDef struct {
	Behavior Behavior
	Instr    uint32
}

// S is shorthand for a SiteDef with the default instruction gap.
func S(behavior Behavior) SiteDef { return SiteDef{Behavior: behavior} }

// SI is shorthand for a SiteDef with an explicit instruction gap.
func SI(behavior Behavior, instr uint32) SiteDef {
	return SiteDef{Behavior: behavior, Instr: instr}
}

func (b *Builder) addSite(d SiteDef) int {
	instr := d.Instr
	if instr == 0 {
		instr = uint32(4 + b.buildRand.Intn(9)) // 4..12 instructions/branch
	}
	// Advance the PC by a realistic basic-block size (aligned).
	b.nextPC += uint64(4 * (2 + b.buildRand.Intn(8)))
	idx := len(b.prog.Sites)
	b.prog.Sites = append(b.prog.Sites, Site{
		PC:       b.nextPC,
		Behavior: d.Behavior,
		Instr:    instr,
	})
	return idx
}

// Block appends a block of fresh sites with the given schedule weight and
// repetition bounds, returning the builder for chaining.
func (b *Builder) Block(weight, minRep, maxRep int, defs ...SiteDef) *Builder {
	idxs := make([]int, len(defs))
	for i, d := range defs {
		idxs[i] = b.addSite(d)
	}
	b.prog.Blocks = append(b.prog.Blocks, Block{
		Sites:  idxs,
		Weight: weight,
		MinRep: minRep,
		MaxRep: maxRep,
	})
	return b
}

// Footprint appends nBlocks blocks of sitesPerBlock fresh sites whose
// behaviors come from gen(i). It models large-code-footprint workloads
// (databases, servers): many distinct branch addresses, each individually
// easy, which together thrash small tables.
func (b *Builder) Footprint(nBlocks, sitesPerBlock, weight, minRep, maxRep int, gen func(i int) SiteDef) *Builder {
	n := 0
	for bi := 0; bi < nBlocks; bi++ {
		defs := make([]SiteDef, sitesPerBlock)
		for si := range defs {
			defs[si] = gen(n)
			n++
		}
		b.Block(weight, minRep, maxRep, defs...)
	}
	return b
}

// Gap inserts address space between consecutive sites (models code regions
// far apart, spreading bimodal indices).
func (b *Builder) Gap(bytes uint64) *Builder {
	b.nextPC += bytes
	return b
}

// Build finalizes and validates the Program.
func (b *Builder) Build() (*Program, error) {
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build panicking on error; recipes are static so an error is
// a bug caught by the suite tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
