package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/xrand"
)

// TestQuickArbitraryProgramsReplayIdentically: any structurally valid
// random program replays bit-identically across Opens.
func TestQuickArbitraryProgramsReplayIdentically(t *testing.T) {
	f := func(seed uint64, shape uint16) bool {
		b := NewBuilder("q", seed)
		b.SetLength(3000)
		r := xrand.New(seed ^ 0xABCD)
		nBlocks := int(shape%4) + 1
		for i := 0; i < nBlocks; i++ {
			behaviors := []SiteDef{
				S(Const{Taken: r.Bool()}),
				S(Biased{P: r.Float64()}),
				S(Loop{Trip: r.Intn(20) + 1}),
				S(Pattern{Bits: patternBits(r, r.Intn(12)+2), Noise: r.Float64() * 0.1}),
				S(VarLoop{Min: 2, Max: r.Intn(8) + 2}),
			}
			n := r.Intn(len(behaviors)) + 1
			b.Block(r.Intn(9)+1, 1, r.Intn(10)+1, behaviors[:n]...)
		}
		prog := b.MustBuild()
		a, err := trace.Collect(prog)
		if err != nil {
			return false
		}
		bb, err := trace.Collect(prog)
		if err != nil {
			return false
		}
		if len(a) != len(bb) {
			return false
		}
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockWeightProportions: dynamic branch shares track block weights
// scaled by body size and repetition.
func TestBlockWeightProportions(t *testing.T) {
	p := NewBuilder("w", 99).SetLength(120000).
		Block(3, 2, 2, S(Const{Taken: true})).
		Block(1, 2, 2, S(Const{Taken: false})).
		MustBuild()
	recs, err := trace.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	taken := 0
	for _, r := range recs {
		if r.Taken {
			taken++
		}
	}
	// Identical body sizes and repetitions: share == weight share = 3/4.
	frac := float64(taken) / float64(len(recs))
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("weight-3 block got %.3f of branches, want ~0.75", frac)
	}
}

// TestSuiteTracesHaveDistinctStreams: no two suite traces may produce the
// same outcome stream (a recipe/seed collision would silently weaken the
// evaluation).
func TestSuiteTracesHaveDistinctStreams(t *testing.T) {
	sig := func(tr trace.Trace) uint64 {
		r := trace.Limit(tr, 4096).Open()
		var h uint64 = 1469598103934665603
		for {
			b, err := r.Next()
			if err != nil {
				return h
			}
			x := b.PC<<1 | 1
			if !b.Taken {
				x = b.PC << 1
			}
			h = (h ^ x) * 1099511628211
		}
	}
	seen := map[uint64]string{}
	for _, tr := range append(CBP1(), CBP2()...) {
		s := sig(tr)
		if prev, dup := seen[s]; dup {
			t.Fatalf("traces %s and %s have identical streams", prev, tr.Name())
		}
		seen[s] = tr.Name()
	}
}

// TestInstrGapsBounded: every record's instruction count stays within the
// builder's sane band.
func TestInstrGapsBounded(t *testing.T) {
	for _, tr := range []trace.Trace{CBP1()[3], CBP2()[11]} {
		recs, err := trace.Collect(trace.Limit(tr, 20000))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Instr < 1 || r.Instr > 16 {
				t.Fatalf("%s: instruction gap %d out of band", tr.Name(), r.Instr)
			}
		}
	}
}

// TestEnvHistReflectsStream: the environment history visible to
// correlated behaviors equals the actual emitted outcomes.
func TestEnvHistReflectsStream(t *testing.T) {
	// Correlated{Lags:[1]} copies the previous branch outcome; with a
	// single deterministic neighbor the copy must match exactly.
	p := NewBuilder("h", 5).SetLength(2000).
		Block(1, 1, 1,
			S(Pattern{Bits: []bool{true, false, true, true, false}}),
			S(Correlated{Lags: []int{1}}),
		).
		MustBuild()
	recs, _ := trace.Collect(p)
	for i := 1; i < len(recs); i += 2 {
		if recs[i].Taken != recs[i-1].Taken {
			t.Fatalf("correlated site at %d failed to mirror predecessor", i)
		}
	}
}
