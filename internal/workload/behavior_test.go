package workload

import (
	"math"
	"testing"

	"repro/internal/history"
	"repro/internal/xrand"
)

func newEnv(seed uint64) *Env {
	return &Env{Rand: xrand.New(seed), hist: history.NewBuffer(histCapacity)}
}

func run(inst Instance, env *Env, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = inst.Next(env)
		env.hist.Push(out[i])
	}
	return out
}

func TestConstBehavior(t *testing.T) {
	env := newEnv(1)
	for _, taken := range []bool{true, false} {
		inst := Const{Taken: taken}.New(env.Rand)
		for i, v := range run(inst, env, 50) {
			if v != taken {
				t.Fatalf("Const{%v} produced %v at step %d", taken, v, i)
			}
		}
	}
}

func TestLoopBehavior(t *testing.T) {
	env := newEnv(2)
	inst := Loop{Trip: 4}.New(env.Rand)
	got := run(inst, env, 12)
	want := []bool{true, true, true, false, true, true, true, false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Loop{4} step %d = %v, want %v (seq %v)", i, got[i], want[i], got)
		}
	}
}

func TestLoopTripOne(t *testing.T) {
	env := newEnv(3)
	inst := Loop{Trip: 1}.New(env.Rand)
	for i, v := range run(inst, env, 20) {
		if v {
			t.Fatalf("Loop{1} must never be taken; taken at %d", i)
		}
	}
}

func TestLoopTripZeroClamped(t *testing.T) {
	env := newEnv(4)
	inst := Loop{Trip: 0}.New(env.Rand)
	// Must not panic or divide by zero; behaves as Trip 1.
	for _, v := range run(inst, env, 10) {
		if v {
			t.Fatal("clamped Loop{0} should behave as never-taken")
		}
	}
}

func TestVarLoopTripsWithinBounds(t *testing.T) {
	env := newEnv(5)
	inst := VarLoop{Min: 3, Max: 7}.New(env.Rand)
	// Measure run lengths of consecutive takens between not-takens.
	runLen := 0
	seen := 0
	for i := 0; i < 5000; i++ {
		if inst.Next(env) {
			runLen++
		} else {
			trip := runLen + 1
			if trip < 3 || trip > 7 {
				t.Fatalf("observed trip %d outside [3,7]", trip)
			}
			runLen = 0
			seen++
		}
	}
	if seen < 100 {
		t.Fatalf("too few loop exits observed: %d", seen)
	}
}

func TestVarLoopDegenerateBounds(t *testing.T) {
	env := newEnv(6)
	inst := VarLoop{Min: 5, Max: 2}.New(env.Rand) // max < min -> fixed trip 5
	runLen := 0
	for i := 0; i < 100; i++ {
		if inst.Next(env) {
			runLen++
		} else {
			if runLen+1 != 5 {
				t.Fatalf("degenerate VarLoop trip = %d, want 5", runLen+1)
			}
			runLen = 0
		}
	}
}

func TestBiasedRate(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		env := newEnv(uint64(p * 1000))
		inst := Biased{P: p}.New(env.Rand)
		const n = 60000
		taken := 0
		for i := 0; i < n; i++ {
			if inst.Next(env) {
				taken++
			}
		}
		got := float64(taken) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Biased{%v} rate = %v", p, got)
		}
	}
}

func TestPatternPeriodicity(t *testing.T) {
	env := newEnv(7)
	bits := []bool{true, false, false, true, true}
	inst := Pattern{Bits: bits}.New(env.Rand)
	got := run(inst, env, 15)
	for i := range got {
		if got[i] != bits[i%5] {
			t.Fatalf("pattern mismatch at %d: %v", i, got)
		}
	}
}

func TestPatternEmptyDefaultsToTaken(t *testing.T) {
	env := newEnv(8)
	inst := Pattern{}.New(env.Rand)
	if !inst.Next(env) {
		t.Fatal("empty Pattern should default to a taken branch")
	}
}

func TestCorrelatedDeterministicXOR(t *testing.T) {
	env := newEnv(9)
	// Fill history with a known sequence: push outcomes manually.
	seq := []bool{true, false, true, true, false, false, true, false}
	for _, v := range seq {
		env.hist.Push(v)
	}
	// Lags 1 and 3: newest bit (false at lag 1... seq pushed in order, last
	// push = seq[7]=false) XOR bit at lag 3 (seq[5]=false) = false.
	inst := Correlated{Lags: []int{1, 3}}.New(env.Rand)
	got := inst.Next(env)
	want := seq[7] != seq[5]
	if got != want {
		t.Fatalf("Correlated XOR = %v, want %v", got, want)
	}
	// Inverted.
	instInv := Correlated{Lags: []int{1, 3}, Invert: true}.New(env.Rand)
	if instInv.Next(env) != !want {
		t.Fatal("Invert must flip the outcome")
	}
}

func TestCorrelatedIsLearnableFunctionOfHistory(t *testing.T) {
	// With zero noise, identical history windows must give identical
	// outcomes — the property that makes the branch predictable.
	envA := newEnv(10)
	envB := newEnv(11) // different rng — must not matter with Noise 0
	for _, v := range []bool{true, true, false, true} {
		envA.hist.Push(v)
		envB.hist.Push(v)
	}
	a := Correlated{Lags: []int{1, 2, 4}}.New(envA.Rand)
	b := Correlated{Lags: []int{1, 2, 4}}.New(envB.Rand)
	if a.Next(envA) != b.Next(envB) {
		t.Fatal("noise-free Correlated must be a pure function of history")
	}
}

func TestCorrelatedNoiseRate(t *testing.T) {
	env := newEnv(12)
	inst := Correlated{Lags: []int{1}, Noise: 0.25}.New(env.Rand)
	// With constant history (all not-taken), XOR = false; outcomes should be
	// taken ~25% of the time (noise flips).
	const n = 40000
	taken := 0
	for i := 0; i < n; i++ {
		if inst.Next(env) {
			taken++
		}
		// keep history all-false
		env.hist.Push(false)
	}
	got := float64(taken) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("noise rate = %v, want ~0.25", got)
	}
}

func TestCorrelatedDefaultLag(t *testing.T) {
	env := newEnv(13)
	env.hist.Push(true)
	inst := Correlated{}.New(env.Rand)
	if !inst.Next(env) {
		t.Fatal("default Correlated should mirror previous outcome")
	}
}

func TestPhasedSwitchesBehavior(t *testing.T) {
	env := newEnv(14)
	inst := Phased{
		Phases: []Behavior{Const{Taken: true}, Const{Taken: false}},
		Period: 10,
	}.New(env.Rand)
	got := run(inst, env, 40)
	for i := 0; i < 10; i++ {
		if !got[i] {
			t.Fatalf("phase 0 step %d should be taken", i)
		}
	}
	for i := 10; i < 20; i++ {
		if got[i] {
			t.Fatalf("phase 1 step %d should be not-taken", i)
		}
	}
	for i := 20; i < 30; i++ {
		if !got[i] {
			t.Fatalf("wrapped phase 0 step %d should be taken", i)
		}
	}
}

func TestPhasedEmptyPhases(t *testing.T) {
	env := newEnv(15)
	inst := Phased{Period: 5}.New(env.Rand)
	if !inst.Next(env) {
		t.Fatal("empty Phased should degrade to constant taken")
	}
}

func TestPhasedPeriodClamped(t *testing.T) {
	env := newEnv(16)
	inst := Phased{Phases: []Behavior{Const{true}, Const{false}}, Period: 0}.New(env.Rand)
	a, b := inst.Next(env), inst.Next(env)
	if a != true || b != false {
		t.Fatalf("period-0 clamps to 1: got %v,%v", a, b)
	}
}

func TestMarkovRegimeRates(t *testing.T) {
	env := newEnv(41)
	inst := Markov{PHot: 0.95, PCold: 0.05, Switch: 0.002}.New(env.Rand)
	const n = 200000
	taken := 0
	for i := 0; i < n; i++ {
		if inst.Next(env) {
			taken++
		}
	}
	// Symmetric regimes: long-run taken rate near 0.5, far from either
	// regime alone (the process actually switches).
	frac := float64(taken) / n
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("long-run taken rate %.3f, want mid-range", frac)
	}
}

func TestMarkovIsBursty(t *testing.T) {
	env := newEnv(42)
	inst := Markov{PHot: 0.95, PCold: 0.05, Switch: 0.002}.New(env.Rand)
	// Consecutive outcomes must agree far more often than an independent
	// coin with the same mean would (P(agree) = 0.5 for iid fair).
	agree, n := 0, 50000
	prev := inst.Next(env)
	for i := 0; i < n; i++ {
		cur := inst.Next(env)
		if cur == prev {
			agree++
		}
		prev = cur
	}
	if frac := float64(agree) / float64(n); frac < 0.75 {
		t.Fatalf("agreement %.3f, want strongly bursty (> 0.75)", frac)
	}
}

func TestMarkovSwitchClamps(t *testing.T) {
	env := newEnv(43)
	// Switch 0 must not freeze the process forever (defaults to 1/1000).
	inst := Markov{PHot: 1, PCold: 0, Switch: 0}.New(env.Rand)
	first := inst.Next(env)
	changed := false
	for i := 0; i < 20000; i++ {
		if inst.Next(env) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("Markov with default switch never changed regime")
	}
	// Switch > 1 clamps to 1 (flips every execution) without panicking.
	inst2 := Markov{PHot: 1, PCold: 0, Switch: 5}.New(env.Rand)
	for i := 0; i < 10; i++ {
		inst2.Next(env)
	}
}

func TestLocalPatternDeterministic(t *testing.T) {
	env := newEnv(17)
	a := LocalPattern{Taps: []int{1, 3}}.New(env.Rand)
	b := LocalPattern{Taps: []int{1, 3}}.New(env.Rand)
	for i := 0; i < 200; i++ {
		if a.Next(env) != b.Next(env) {
			t.Fatalf("LocalPattern instances diverged at %d", i)
		}
	}
}

func TestLocalPatternNotConstant(t *testing.T) {
	env := newEnv(18)
	inst := LocalPattern{Taps: []int{2, 5}}.New(env.Rand)
	got := run(inst, env, 64)
	same := true
	for _, v := range got[1:] {
		if v != got[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("LocalPattern{2,5} degenerated to constant: %v", got)
	}
}

func TestLocalPatternDefaultTaps(t *testing.T) {
	env := newEnv(19)
	inst := LocalPattern{}.New(env.Rand)
	for i := 0; i < 10; i++ {
		inst.Next(env) // must not panic
	}
}

func TestLocalPatternSeedBits(t *testing.T) {
	env := newEnv(20)
	inst := LocalPattern{Taps: []int{1, 2}, SeedBits: []bool{true, false}}.New(env.Rand)
	// First outcome: hist[0]=true XOR hist[1]=false = true.
	if !inst.Next(env) {
		t.Fatal("seeded first outcome should be true")
	}
}
