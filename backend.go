package repro

import (
	"strconv"

	"repro/internal/predictor"
	"repro/internal/sim"
)

// Backend is the backend-agnostic estimator contract: any registered
// predictor family behind one Predict/Update/Reset interface with
// confidence grading (see predictor.Backend). New builds one from a
// spec; every driver in this package (Run, RunSuiteSpec, the serving
// sessions) accepts any Backend. A *Estimator is itself a Backend, so
// the TAGE simulation hot path stays devirtualized.
type Backend = predictor.Backend

// Spec is the parsed, canonical, comparable form of a backend spec
// string (see predictor.Spec). Two Specs are equal exactly when they
// denote the same canonical spec, which makes Spec a safe cache key.
type Spec = predictor.Spec

// BackendFamily describes one registered backend family: name, summary,
// paper reference, variants and accepted parameters.
type BackendFamily = predictor.Family

// ParseSpec parses a backend spec string ("tage-64K?mode=adaptive",
// "gshare-64K", "perceptron", ...) into its canonical Spec without
// building the backend.
func ParseSpec(spec string) (Spec, error) { return predictor.Parse(spec) }

// Backends lists the registered backend families, sorted by name.
func Backends() []BackendFamily { return predictor.Families() }

// Option is a functional option for New. Options are spec-parameter
// overrides: each one sets (or clears) a parameter on the parsed spec
// before the backend is built, so WithMode(ModeAdaptive) on "tage-64K"
// builds exactly what "tage-64K?mode=adaptive" builds and the resulting
// backend's canonical label reflects the applied options.
type Option func(Spec) Spec

// WithMode selects the tagged-counter automaton (TAGE-family specs).
func WithMode(m AutomatonMode) Option {
	return WithParam("mode", m.String())
}

// WithBimWindow sets the medium-conf-bim window (0 = default 8, -1 =
// disabled; TAGE-family specs).
func WithBimWindow(w int) Option {
	if w == 0 {
		return WithParam("window", "")
	}
	return WithParam("window", strconv.Itoa(w))
}

// WithDenomLog sets the log2 saturation-probability denominator for the
// probabilistic and adaptive automatons (TAGE-family specs).
func WithDenomLog(d uint) Option {
	if d == 0 {
		return WithParam("denomlog", "")
	}
	return WithParam("denomlog", strconv.FormatUint(uint64(d), 10))
}

// WithTargetMKP sets the adaptive controller's misprediction target in
// mispredictions per kilo-prediction (TAGE-family specs).
func WithTargetMKP(target float64) Option {
	if target == 0 {
		return WithParam("mkp", "")
	}
	return WithParam("mkp", strconv.FormatFloat(target, 'g', -1, 64))
}

// WithAdaptiveWindow sets the adaptive controller's evaluation window
// (TAGE-family specs).
func WithAdaptiveWindow(n uint64) Option {
	if n == 0 {
		return WithParam("awindow", "")
	}
	return WithParam("awindow", strconv.FormatUint(n, 10))
}

// WithSeed overrides the predictor's internal randomness seed
// (TAGE-family specs).
func WithSeed(seed uint64) Option {
	return WithParam("seed", strconv.FormatUint(seed, 10))
}

// WithParam sets an arbitrary spec parameter (an empty value clears it).
// Unknown keys fail at build time with the family's accepted list.
func WithParam(key, value string) Option {
	return func(sp Spec) Spec { return sp.WithParam(key, value) }
}

// New builds a backend from a spec string plus functional options — the
// primary construction path of this package. The spec names a family,
// an optional variant and optional parameters; options override
// parameters on top:
//
//	est, err := repro.New("tage-64K", repro.WithMode(repro.ModeAdaptive))
//	gs, err := repro.New("gshare-64K?hist=13")
//
// For TAGE specs the returned Backend is a *Estimator constructed
// exactly as NewEstimator(cfg, opts) — outputs are bit-identical to the
// legacy Config+Options path. Unknown families, variants and parameter
// keys error with the valid choices listed.
func New(spec string, opts ...Option) (Backend, error) {
	sp, err := predictor.Parse(spec)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		sp = opt(sp)
	}
	return predictor.Build(sp)
}

// NewSpec builds a backend from an already parsed Spec.
func NewSpec(sp Spec) (Backend, error) { return predictor.Build(sp) }

// RunSpec builds a fresh backend from the spec and simulates it over a
// trace (limit 0 = full trace).
func RunSpec(spec string, tr Trace, limit uint64) (Result, error) {
	b, err := New(spec)
	if err != nil {
		return Result{}, err
	}
	return Run(b, tr, limit)
}

// RunSuiteSpec simulates a fresh spec-built backend per trace and
// aggregates, the backend-agnostic counterpart of RunSuite.
func RunSuiteSpec(spec string, traces []Trace, limit uint64) (SuiteResult, error) {
	sp, err := predictor.Parse(spec)
	if err != nil {
		return SuiteResult{}, err
	}
	return sim.RunSuiteSpec(sp, traces, limit)
}

// SnapshotBackend serializes a backend's complete predictor state into a
// self-describing versioned blob: spec line, state image and checksum.
// Restoring the blob yields a backend that continues bit-identically to
// the original. Every registered family supports it.
func SnapshotBackend(b Backend) ([]byte, error) {
	return predictor.AppendSnapshot(nil, b)
}

// RestoreBackend rebuilds a backend from a SnapshotBackend blob,
// validating the format version and checksum.
func RestoreBackend(blob []byte) (Backend, error) {
	return predictor.RestoreSnapshot(blob)
}
