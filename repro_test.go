package repro

import (
	"context"
	"net"
	"testing"
)

func TestFacadeQuickstartPath(t *testing.T) {
	est := NewEstimator(Small16K(), Options{Mode: ModeProbabilistic})
	tr, err := TraceByName("FP-1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(est, tr, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 20000 {
		t.Fatalf("branches = %d", res.Branches)
	}
	if res.Total.Preds != res.Branches {
		t.Fatal("every branch must be predicted")
	}
}

func TestFacadeConfigs(t *testing.T) {
	if Small16K().StorageBits() != 16384 ||
		Medium64K().StorageBits() != 65536 ||
		Large256K().StorageBits() != 262144 {
		t.Fatal("storage budgets wrong through facade")
	}
	if len(StandardConfigs()) != 3 {
		t.Fatal("StandardConfigs")
	}
	if _, err := ConfigByName("64K"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(CBP1()) != 20 || len(CBP2()) != 20 {
		t.Fatal("suites incomplete")
	}
	if _, err := Suite("cbp2"); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceByName("no-such-trace"); err == nil {
		t.Fatal("unknown trace must error")
	}
}

func TestFacadeEnumerations(t *testing.T) {
	if len(Classes()) != int(NumClasses) || len(Levels()) != int(NumLevels) {
		t.Fatal("enumerations incomplete")
	}
	if Stag.Level() != High || Wtag.Level() != Low || NStag.Level() != Medium {
		t.Fatal("level mapping wrong through facade")
	}
}

func TestFacadeRunSuite(t *testing.T) {
	traces := []Trace{CBP1()[0], CBP1()[1]}
	sr, err := RunSuite(Small16K(), Options{}, traces, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerTrace) != 2 || sr.Aggregate.Branches != 10000 {
		t.Fatalf("suite run shape: %d traces, %d branches", len(sr.PerTrace), sr.Aggregate.Branches)
	}
}

func TestFacadePredictorDirect(t *testing.T) {
	p := NewPredictor(Small16K())
	obs := p.Predict(0x400100)
	if obs.PC != 0x400100 {
		t.Fatal("observation PC mismatch")
	}
	p.Update(0x400100, true)
}

// TestFacadeServing drives the serving facade end to end — the tageload
// replay path through a live server — and pins the online/offline
// equivalence at the facade level: the served per-level counts equal
// Run's for the same (config, options, trace, limit), bit for bit.
func TestFacadeServing(t *testing.T) {
	srv := NewServer(ServeConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	c, err := DialServer(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	opts := Options{Mode: ModeProbabilistic}
	sess, err := c.Open("64K", opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceByName("300.twolf")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 30_000
	online, err := sess.Replay(tr, limit, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Run(NewEstimator(Medium64K(), opts), tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	if online != offline {
		t.Fatalf("online result != offline result\nonline:  %+v\noffline: %+v", online, offline)
	}
	for _, l := range Levels() {
		if online.Level(l) != offline.Level(l) {
			t.Fatalf("level %v counts differ: %v != %v", l, online.Level(l), offline.Level(l))
		}
	}
}
