//go:build race

package repro

// raceEnabled reports that this test binary was built with -race. The
// race detector makes sync.Pool intentionally drop a fraction of Puts to
// surface reuse races, so allocation pins that depend on pool recycling
// cannot hold under it.
const raceEnabled = true
