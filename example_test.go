package repro_test

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro"
	"repro/internal/metrics"
)

// The three paper configurations have exact storage budgets.
func ExampleConfig() {
	for _, cfg := range repro.StandardConfigs() {
		fmt.Printf("%s: 1+%d tables, history %d..%d, %d bits\n",
			cfg.Name, cfg.NumTables(),
			cfg.HistLengths[0], cfg.HistLengths[len(cfg.HistLengths)-1],
			cfg.StorageBits())
	}
	// Output:
	// 16Kbits: 1+4 tables, history 3..80, 16384 bits
	// 64Kbits: 1+7 tables, history 5..130, 65536 bits
	// 256Kbits: 1+8 tables, history 5..300, 262144 bits
}

// The seven observable classes aggregate into the paper's three levels.
func ExampleClass_Level() {
	for _, c := range repro.Classes() {
		fmt.Printf("%s -> %s\n", c, c.Level())
	}
	// Output:
	// low-conf-bim -> low
	// medium-conf-bim -> medium
	// high-conf-bim -> high
	// Wtag -> low
	// NWtag -> low
	// NStag -> medium
	// Stag -> high
}

// Predicting a branch returns the direction plus its confidence grade.
// New builds any registered backend from a spec string; functional
// options are parameter overrides, so both forms below are the same
// predictor — and both are bit-identical to the legacy
// NewEstimator(Config, Options) constructor.
func ExampleNew() {
	est, err := repro.New("tage-16K?mode=probabilistic")
	if err != nil {
		log.Fatal(err)
	}
	same, err := repro.New("tage-16K", repro.WithMode(repro.ModeProbabilistic))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s == %s\n", est.Label(), same.Label())
	gs, err := repro.New("gshare-64K")
	if err != nil {
		log.Fatal(err)
	}
	pred, _, level := gs.Predict(0x400100)
	fmt.Printf("%s cold: pred=%v level=%v\n", gs.Label(), pred, level)
	// Output:
	// 16Kbits == 16Kbits
	// gshare-64K cold: pred=false level=low
}

func ExampleEstimator() {
	est := repro.NewEstimator(repro.Small16K(), repro.Options{
		Mode: repro.ModeProbabilistic,
	})
	pc := uint64(0x400100)
	// A cold predictor grades its bimodal guess as low confidence (weak
	// counter).
	pred, class, level := est.Predict(pc)
	fmt.Printf("cold: pred=%v class=%v level=%v\n", pred, class, level)
	est.Update(pc, false)
	// After training, the same branch becomes high confidence.
	for i := 0; i < 10; i++ {
		est.Predict(pc)
		est.Update(pc, false)
	}
	_, class, level = est.Predict(pc)
	est.Update(pc, false)
	fmt.Printf("trained: class=%v level=%v\n", class, level)
	// Output:
	// cold: pred=false class=low-conf-bim level=low
	// trained: class=high-conf-bim level=high
}

// The online serving mode: an in-process server, a wire-protocol
// session, and server-side tallies that match an offline repro.Run bit
// for bit. Everything is deterministic, down to the served counts.
func ExampleServer() {
	srv := repro.NewServer(repro.ServeConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	c, err := repro.DialServer(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open("16K", repro.Options{Mode: repro.ModeProbabilistic})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := repro.TraceByName("FP-1")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Replay(tr, 20_000, 1000, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d branches of %s on %s\n", res.Branches, res.Trace, res.Config)
	for _, l := range repro.Levels() {
		cnt := res.Level(l)
		fmt.Printf("%-6s %4.1f%% of predictions, %5.1f MKP\n",
			l, 100*metrics.Pcov(cnt, res.Total), cnt.MKP())
	}
	// Output:
	// served 20000 branches of FP-1 on 16Kbits
	// low     3.9% of predictions, 243.9 MKP
	// medium 30.8% of predictions,  23.0 MKP
	// high   65.3% of predictions,   3.7 MKP
}

// Suites provide the 40 named synthetic traces.
func ExampleSuite() {
	cbp1, _ := repro.Suite("cbp1")
	cbp2, _ := repro.Suite("cbp2")
	fmt.Printf("cbp1: %d traces, first %s\n", len(cbp1), cbp1[0].Name())
	fmt.Printf("cbp2: %d traces, last %s\n", len(cbp2), cbp2[len(cbp2)-1].Name())
	// Output:
	// cbp1: 20 traces, first FP-1
	// cbp2: 20 traces, last 300.twolf
}
