// Package repro is a from-scratch Go reproduction of André Seznec's
// "Storage Free Confidence Estimation for the TAGE branch predictor"
// (INRIA RR-7371, 2010 / HPCA 2011).
//
// The package is a facade over the implementation packages in internal/:
// the backend-agnostic predictor layer (internal/predictor), the TAGE
// predictor (internal/tage), the storage-free confidence estimator
// (internal/core), the synthetic CBP-1/CBP-2 workload suites
// (internal/workload), the simulation drivers (internal/sim) and the
// paper's experiments (internal/experiments, cmd/reprotables).
//
// # Quickstart
//
// A predictor is named by a backend spec — family, optional variant,
// optional parameters — and built with New:
//
//	est, err := repro.New("tage-64K", repro.WithMode(repro.ModeProbabilistic))
//	// equivalently: repro.New("tage-64K?mode=probabilistic")
//	for each branch {
//	    pred, class, level := est.Predict(pc)
//	    ...
//	    est.Update(pc, taken)
//	}
//
// Level is High, Medium or Low with the paper's headline behavior: the
// high-confidence class mispredicts below ~1%, medium ~5-10%, low ~30%.
// Every registered predictor family builds the same way — "gshare-64K",
// "perceptron", "ogehl", "jrs-16K?enhanced=true", "ltage-64K", ... (see
// Backends for the registry) — and runs through the same drivers:
//
//	res, err := repro.RunSpec("gshare-64K", tr, 0)
//	sr, err := repro.RunSuiteSpec("perceptron", repro.CBP1(), 0)
//
// See the examples/ directory for runnable programs and cmd/reprotables
// for regenerating every table and figure of the paper.
//
// # Migration from the Config+Options constructors
//
// The original constructors remain as thin wrappers and stay
// bit-identical; the spec grammar is the primary path:
//
//	NewEstimator(Medium64K(), Options{})                      → New("tage-64K")
//	NewEstimator(Small16K(), Options{Mode: ModeProbabilistic}) → New("tage-16K?mode=probabilistic")
//	NewEstimator(Large256K(), Options{Mode: ModeAdaptive,
//	    TargetMKP: 4})                                         → New("tage-256K?mkp=4&mode=adaptive")
//	NewEstimator(cfg, Options{BimWindow: -1})                  → New("tage-64K?window=-1")
//	NewPredictor(cfg) (raw TAGE, no confidence)                → unchanged
//
// Options map to spec parameters: Mode→mode, DenomLog→denomlog,
// BimWindow→window, TargetMKP→mkp, AdaptiveWindow→awindow; Config
// structural fields to name, bl, tl, tag, hist, ctr, u, path, urp, seed
// and noalt (variant "custom" spells out a full configuration).
//
// # Serving mode
//
// The estimator is also available as an online service (internal/serve,
// cmd/tageserved): a server hosts many concurrent predictor sessions
// behind a compact binary wire protocol, and clients stream branch
// batches in and get (prediction, class, level) grades back live —
// bit-identical to an offline Run over the same stream.
//
//	srv := repro.NewServer(repro.ServeConfig{Addr: ":7421"})
//	go srv.ListenAndServe()
//	...
//	c, _ := repro.DialServer("localhost:7421")
//	sess, _ := c.OpenSpec("tage-64K?mode=probabilistic")
//	grades, _ := sess.Predict(batch) // []Grade: Pred, Class, Level
//	res, _ := sess.Close()           // per-class tallies == offline Run
//
// Sessions are heterogeneous: each OpenSpec may name any registered
// backend ("gshare-64K" next to TAGE next to "perceptron" on one
// server), and /metrics reports per-backend counters.
//
// cmd/tageload is the matching load generator (throughput, tail latency,
// per-level breakdown over the workload suites); the server exposes
// per-level hit/misprediction counters on /metrics.
package repro

import (
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes a TAGE predictor instance (see tage.Config).
type Config = tage.Config

// Observation is the per-prediction component observation the storage-free
// estimator grades (see tage.Observation).
type Observation = tage.Observation

// Predictor is the TAGE predictor (see tage.Predictor).
type Predictor = tage.Predictor

// Estimator bundles a TAGE predictor with the paper's confidence
// classifier (see core.Estimator).
type Estimator = core.Estimator

// Options configures an Estimator (see core.Options).
type Options = core.Options

// Class is one of the paper's seven prediction classes.
type Class = core.Class

// Level is one of the three aggregate confidence levels.
type Level = core.Level

// AutomatonMode selects the tagged-counter update automaton.
type AutomatonMode = core.AutomatonMode

// Branch is one dynamic conditional branch of a trace.
type Branch = trace.Branch

// Trace is a named, replayable branch trace.
type Trace = trace.Trace

// Result carries per-class simulation statistics (see sim.Result).
type Result = sim.Result

// SuiteResult bundles per-trace results with their aggregate.
type SuiteResult = sim.SuiteResult

// The seven prediction classes (§5 of the paper).
const (
	LowConfBim    = core.LowConfBim
	MediumConfBim = core.MediumConfBim
	HighConfBim   = core.HighConfBim
	Wtag          = core.Wtag
	NWtag         = core.NWtag
	NStag         = core.NStag
	Stag          = core.Stag
	NumClasses    = core.NumClasses
)

// The three confidence levels (§6.1).
const (
	Low       = core.Low
	Medium    = core.Medium
	High      = core.High
	NumLevels = core.NumLevels
)

// Automaton modes.
const (
	// ModeStandard runs the unmodified TAGE automaton (§5).
	ModeStandard = core.ModeStandard
	// ModeProbabilistic installs the §6 modified automaton (probability
	// 1/128 by default), making saturated counters high confidence.
	ModeProbabilistic = core.ModeProbabilistic
	// ModeAdaptive adds the §6.2 run-time probability controller.
	ModeAdaptive = core.ModeAdaptive
)

// Small16K returns the paper's 16 Kbit configuration (1+4 tables,
// histories 3..80).
func Small16K() Config { return tage.Small16K() }

// Medium64K returns the paper's 64 Kbit configuration (1+7 tables,
// histories 5..130).
func Medium64K() Config { return tage.Medium64K() }

// Large256K returns the paper's 256 Kbit configuration (1+8 tables,
// histories 5..300).
func Large256K() Config { return tage.Large256K() }

// StandardConfigs returns the three paper configurations in size order.
func StandardConfigs() []Config { return tage.StandardConfigs() }

// ConfigByName resolves "16K", "64K" or "256K".
func ConfigByName(name string) (Config, error) { return tage.ConfigByName(name) }

// NewEstimator builds a predictor plus storage-free confidence
// estimator. It is the legacy TAGE construction path; New("tage-...")
// builds the identical estimator from a spec string.
func NewEstimator(cfg Config, opts Options) *Estimator {
	return core.NewEstimator(cfg, opts)
}

// NewPredictor builds a bare TAGE predictor with the standard automaton
// (use NewEstimator for confidence estimation).
func NewPredictor(cfg Config) *Predictor { return tage.New(cfg) }

// CBP1 returns the 20-trace synthetic stand-in for the CBP-1 trace set.
func CBP1() []Trace { return workload.CBP1() }

// CBP2 returns the 20-trace synthetic stand-in for the CBP-2 trace set.
func CBP2() []Trace { return workload.CBP2() }

// Suite returns a suite by name ("cbp1" or "cbp2").
func Suite(name string) ([]Trace, error) { return workload.Suite(name) }

// TraceByName returns one of the 40 named traces.
func TraceByName(name string) (Trace, error) { return workload.ByName(name) }

// Run simulates a backend over a trace (limit 0 = full trace),
// collecting per-class statistics. Any Backend works (a *Estimator is
// one); the TAGE hot path stays devirtualized.
func Run(b Backend, tr Trace, limit uint64) (Result, error) {
	return sim.Run(b, tr, limit)
}

// RunSuite simulates a fresh estimator per trace and aggregates.
func RunSuite(cfg Config, opts Options, traces []Trace, limit uint64) (SuiteResult, error) {
	return sim.RunSuite(cfg, opts, traces, limit)
}

// Classes lists the seven classes in display order.
func Classes() []Class { return core.Classes() }

// Levels lists the three levels in rising-confidence order.
func Levels() []Level { return core.Levels() }

// ServeConfig configures an online prediction server (see serve.Config).
type ServeConfig = serve.Config

// ServeEngineConfig sizes the server's session engine: registry shards,
// max sessions, default predictor (see serve.EngineConfig).
type ServeEngineConfig = serve.EngineConfig

// Server is the online prediction server (see serve.Server).
type Server = serve.Server

// ServeClient speaks the serving wire protocol (see serve.Client).
type ServeClient = serve.Client

// ServeSession is one open session on a server (see serve.ClientSession).
type ServeSession = serve.ClientSession

// Grade is one served prediction: direction plus confidence class and
// level (see serve.Grade).
type Grade = serve.Grade

// NewServer builds an online prediction server.
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }

// DialServer connects a client to a server's wire-protocol address.
func DialServer(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// CheckpointStore persists keyed serving sessions as atomic per-session
// checkpoint files; attach one through ServeConfig.StateDir to make a
// server's keyed sessions survive restarts and crashes (see
// serve.CheckpointStore).
type CheckpointStore = serve.CheckpointStore

// OpenCheckpointStore opens (creating if needed) a checkpoint directory.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	return serve.OpenCheckpointStore(dir)
}

// ServeOpenRequest names the backend (and optional durable key) a
// session open carries (see serve.OpenRequest).
type ServeOpenRequest = serve.OpenRequest

// RouterConfig configures a failover-aware session router over a set of
// server nodes (see serve.RouterConfig).
type RouterConfig = serve.RouterConfig

// SessionRouter places keyed sessions on a cluster of servers by
// consistent hashing and transparently recovers them from node restarts
// and failures (see serve.Router).
type SessionRouter = serve.Router

// RoutedSession is a keyed session managed by a SessionRouter; its
// Replay survives node crashes, restarts and failovers with tallies
// bit-identical to an uninterrupted run (see serve.RouterSession).
type RoutedSession = serve.RouterSession

// RouterNodeStats is the per-node roll-up of sessions placed, retries
// and failovers (see serve.NodeStats).
type RouterNodeStats = serve.NodeStats

// NewSessionRouter builds a failover-aware session router.
func NewSessionRouter(cfg RouterConfig) (*SessionRouter, error) {
	return serve.NewRouter(cfg)
}
