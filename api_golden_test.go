package repro

// The facade's exported identifiers are the package's public API
// contract: cmd/ binaries, examples/ and downstream users build against
// them. This golden test snapshots every exported top-level identifier
// (with its declaration kind) so an accidental removal or rename fails
// CI instead of silently breaking users. Intentional API changes update
// the snapshot with:
//
//	UPDATE_API_GOLDEN=1 go test -run TestAPIGolden .

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// exportedAPI parses the package's non-test files and returns one line
// per exported top-level identifier, sorted: "kind Name".
func exportedAPI(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["repro"]
	if !ok {
		t.Fatalf("package repro not found (got %v)", pkgs)
	}
	var lines []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			lines = append(lines, kind+" "+name)
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					add("func", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add("type", s.Name.Name)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							add(kind, n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestAPIGolden(t *testing.T) {
	const golden = "testdata/api.golden"
	got := strings.Join(exportedAPI(t), "\n") + "\n"
	if os.Getenv("UPDATE_API_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d identifiers)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing API snapshot (run UPDATE_API_GOLDEN=1 go test -run TestAPIGolden .): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface changed.\nIf intentional, refresh with UPDATE_API_GOLDEN=1 go test -run TestAPIGolden .\n%s",
			diffLines(string(want), got))
	}
}

// diffLines renders a minimal ± diff of the two sorted identifier lists.
func diffLines(want, got string) string {
	w := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	g := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	inWant := make(map[string]bool, len(w))
	for _, l := range w {
		inWant[l] = true
	}
	inGot := make(map[string]bool, len(g))
	for _, l := range g {
		inGot[l] = true
	}
	var b strings.Builder
	for _, l := range w {
		if !inGot[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range g {
		if !inWant[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}
