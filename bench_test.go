package repro

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §5 for the experiment index). Each benchmark runs the
// corresponding experiment and reports its headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. The committed full-length outputs live
// in EXPERIMENTS.md; cmd/reprotables renders the same experiments as
// formatted tables and charts.

import (
	"context"
	"io"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fetchgate"
	"repro/internal/multipath"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/smtpolicy"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchLimit is the per-trace record budget for the benchmark harness:
// large enough for stable class statistics, small enough to keep a full
// -bench=. run in minutes.
const benchLimit = 150_000

// benchRunner is shared across benchmarks so repeated experiments reuse
// cached suite simulations (all runs are deterministic).
var benchRunner = experiments.New(benchLimit)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchRunner.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].CBP1MPKI, "cbp1-16K-mpki")
		b.ReportMetric(t.Rows[1].CBP1MPKI, "cbp1-64K-mpki")
		b.ReportMetric(t.Rows[2].CBP1MPKI, "cbp1-256K-mpki")
		b.ReportMetric(t.Rows[2].CBP2MPKI, "cbp2-256K-mpki")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.RunFigure2()
		if err != nil {
			b.Fatal(err)
		}
		fig.Render(io.Discard)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.RunFigure3()
		if err != nil {
			b.Fatal(err)
		}
		fig.Render(io.Discard)
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.RunFigure4()
		if err != nil {
			b.Fatal(err)
		}
		// The paper's central §5 quantity: weak tagged counters are
		// drastically less reliable than saturated ones.
		var wtag, stag float64
		for _, tr := range fig.Traces {
			wtag += tr.MPrate(core.Wtag)
			stag += tr.MPrate(core.Stag)
		}
		n := float64(len(fig.Traces))
		b.ReportMetric(wtag/n, "Wtag-MKP")
		b.ReportMetric(stag/n, "Stag-MKP")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.RunFigure5()
		if err != nil {
			b.Fatal(err)
		}
		fig.Render(io.Discard)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.RunFigure6()
		if err != nil {
			b.Fatal(err)
		}
		var stag float64
		for _, tr := range fig.Traces {
			stag += tr.MPrate(core.Stag)
		}
		b.ReportMetric(stag/float64(len(fig.Traces)), "Stag-MKP-modified")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchRunner.RunThreeClass(false)
		if err != nil {
			b.Fatal(err)
		}
		// 16K CBP-1 row: the paper's 0.690-0.128 (7) headline cell.
		b.ReportMetric(t.Rows[0].High.Pcov, "high-Pcov-16K-cbp1")
		b.ReportMetric(t.Rows[0].High.MPrate, "high-MKP-16K-cbp1")
		b.ReportMetric(t.Rows[0].Low.MPrate, "low-MKP-16K-cbp1")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchRunner.RunThreeClass(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].High.Pcov, "high-Pcov-16K-cbp1")
		b.ReportMetric(t.Rows[0].High.MPrate, "high-MKP-16K-cbp1")
	}
}

func BenchmarkProbabilitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := benchRunner.RunSweep()
		if err != nil {
			b.Fatal(err)
		}
		first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
		b.ReportMetric(first.High.Pcov-last.High.Pcov, "high-Pcov-range")
		b.ReportMetric(first.High.MPrate-last.High.MPrate, "high-MKP-range")
	}
}

func BenchmarkAblationBimWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner.RunBimWindowAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUseAlt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := benchRunner.RunUseAltAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].WithoutMPKI-a.Rows[0].WithMPKI, "usealt-gain-mpki-16K")
	}
}

func BenchmarkAblationCtrWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := benchRunner.RunCtrWidthAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[1].MPKI-a.Rows[0].MPKI, "widening-cost-mpki-16K")
	}
}

func BenchmarkEstimatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := benchRunner.RunEstimatorComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Rows[0].Confusion.PVP(), "storage-free-PVP")
		b.ReportMetric(c.Rows[1].Confusion.PVP(), "jrs-PVP")
	}
}

func BenchmarkSelfConfidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := benchRunner.RunSelfConfidence()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range s.Rows {
			if row.Name == "O-GEHL |sum|>=theta" {
				// §2.2's quoted characterization: PVN ~1/3, SPEC ~1/2.
				b.ReportMetric(row.Confusion.PVN(), "ogehl-PVN")
				b.ReportMetric(row.Confusion.Spec(), "ogehl-SPEC")
			}
		}
	}
}

func BenchmarkLTAGE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := benchRunner.RunLTAGE()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Rows[0].TageMPKI-c.Rows[0].LtageMPKI, "loop-gain-mpki-16K-cbp1")
	}
}

func BenchmarkInversionAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inv, err := benchRunner.RunInversion()
		if err != nil {
			b.Fatal(err)
		}
		// The closest class to the 500 MKP inversion break-even.
		max := 0.0
		for _, row := range inv.Rows {
			if row.MPrate > max {
				max = row.MPrate
			}
		}
		b.ReportMetric(max, "worst-class-MKP")
	}
}

func BenchmarkFetchGating(b *testing.B) {
	tr, err := workload.ByName("300.twolf")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gated, baseline, err := fetchgate.Compare(
			tage.Small16K(),
			core.Options{Mode: core.ModeProbabilistic},
			fetchgate.AggressiveConfig(), tr, benchLimit)
		if err != nil {
			b.Fatal(err)
		}
		s := fetchgate.Evaluate(gated, baseline)
		b.ReportMetric(s.WrongPathReduction, "wrongpath-reduction")
		b.ReportMetric(s.Slowdown, "slowdown")
	}
}

func BenchmarkMultipath(b *testing.B) {
	tr, err := workload.ByName("300.twolf")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		all, err := multipath.Compare(tage.Small16K(),
			core.Options{Mode: core.ModeProbabilistic},
			multipath.DefaultConfig(), tr, 60000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(all[multipath.ForkLowConfidence].ForkAccuracy(), "fork-low-accuracy")
		b.ReportMetric(all[multipath.ForkAlways].WastedFraction(), "fork-always-waste")
	}
}

func BenchmarkSMTPolicy(b *testing.B) {
	var traces []trace.Trace
	for _, n := range []string{"255.vortex", "300.twolf"} {
		tr, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, tr)
	}
	for i := 0; i < b.N; i++ {
		var thr [2]float64
		for pi, p := range []smtpolicy.Policy{smtpolicy.RoundRobin, smtpolicy.ConfidenceThrottle} {
			cfg := smtpolicy.DefaultConfig()
			cfg.Policy = p
			st, err := smtpolicy.Run(tage.Small16K(),
				core.Options{Mode: core.ModeProbabilistic}, cfg, traces, 60000)
			if err != nil {
				b.Fatal(err)
			}
			thr[pi] = st.Throughput()
		}
		b.ReportMetric(thr[1]/thr[0], "confidence-vs-rr-throughput")
	}
}

// BenchmarkPredictUpdate is the per-branch hot-path microbenchmark: one
// Predict+Update pair per iteration over a preloaded in-memory branch
// stream, reporting allocations (the hot path must stay at 0 allocs/op).
func BenchmarkPredictUpdate(b *testing.B) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range StandardConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			est := NewEstimator(cfg, Options{Mode: ModeProbabilistic})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br := branches[i%len(branches)]
				est.Predict(br.PC)
				est.Update(br.PC, br.Taken)
			}
		})
	}
}

// BenchmarkTraceDecode measures the chunked file-trace decoder: one
// record decoded per iteration, reporting allocations (0 allocs/op per
// record).
func BenchmarkTraceDecode(b *testing.B) {
	tr, err := workload.ByName("SERV-1")
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/bench.tbt"
	if err := trace.WriteFile(path, trace.Limit(tr, 200_000)); err != nil {
		b.Fatal(err)
	}
	ft, err := trace.OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	r := ft.Open()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			r = ft.Open()
			if _, err := r.Next(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteRunner compares the serial reference path with the
// sharded worker-pool engine over the same suite workload. On a
// multicore box the parallel case should approach a GOMAXPROCS-fold
// speedup (the per-trace runs share nothing).
func BenchmarkSuiteRunner(b *testing.B) {
	traces := CBP1()
	const limit = 30_000
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			pool := sim.SuiteRunner{Workers: bc.workers}
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunSuite(Small16K(), Options{Mode: ModeProbabilistic}, traces, limit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentAxis measures the experiment-axis fan-out: a fresh
// Runner per iteration executes the sweep (7 operating points over the
// same suite) serially and through the pool. Unlike BenchmarkSuiteRunner
// it exercises the arm-level ForEach, the singleflight memo and the
// nested (arm × trace) parallelism, so it is the scaling number for
// composite invocations like `reprotables -experiment all`.
func BenchmarkExperimentAxis(b *testing.B) {
	const limit = 30_000
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.NewWorkers(limit, bc.workers)
				if _, err := r.RunSweep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompositeAll measures the full `-experiment all` composite on
// a fresh Runner per iteration: wall-clock per composite pass plus the
// trace-level simulation economy of the (config, options, trace) memo as
// custom metrics. trace-sims is the number of distinct per-trace
// simulations actually executed (720 at this limit; before trace-granular
// sharing the composite executed 732 — the suite-level memo re-simulated
// the figure-4/6 trace subsets) and trace-hits the per-trace requests
// served from cache. cmd/benchjson records both in BENCH_<date>.json.
func BenchmarkCompositeAll(b *testing.B) {
	const limit = 4000
	for i := 0; i < b.N; i++ {
		r := experiments.NewWorkers(limit, 0)
		out, err := r.Run("all")
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range out {
			v.Render(io.Discard)
		}
		b.ReportMetric(float64(r.Simulations()), "trace-sims")
		b.ReportMetric(float64(r.TraceHits()), "trace-hits")
	}
}

// BenchmarkServeThroughput measures the online prediction service end
// to end over a real loopback TCP connection: one session streaming
// 1024-branch batches through a live server, one iteration per served
// branch. branches/sec is the headline serving number cmd/benchjson
// records in BENCH_<date>.json (see PERF.md for the 1-core caveat: on
// the build container client and server share one CPU, so this is a
// lower bound on the per-core serving rate).
func BenchmarkServeThroughput(b *testing.B) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open("64K", Options{Mode: ModeProbabilistic})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := batch
		if left := b.N - sent; left < n {
			n = left
		}
		off := sent % (len(branches) - batch)
		if _, err := sess.Predict(branches[off : off+n]); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "branches/sec")
}

// BenchmarkCheckpoint measures the durability tax of the serve layer:
// "encode" is the cost of serializing a warmed keyed session into its
// versioned snapshot blob (what the failover token and the SnapGet frame
// pay), and "write" is a full forced checkpoint pass — snapshot under the
// session lock plus the atomic temp+rename file write (what the
// background checkpoint loop pays per dirty session per interval). The
// serving hot path itself stays zero-alloc regardless (alloc_test.go);
// this benchmark prices the between-batch passes. PERF.md records the
// numbers.
func BenchmarkCheckpoint(b *testing.B) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 50_000))
	if err != nil {
		b.Fatal(err)
	}
	newWarmEngine := func(b *testing.B) (*serve.Engine, *serve.Session) {
		eng := serve.NewEngine(serve.EngineConfig{})
		cs, err := serve.OpenCheckpointStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.AttachStore(cs, 0); err != nil {
			b.Fatal(err)
		}
		sess, err := eng.Open(serve.OpenRequest{
			Config:  "16K",
			Options: Options{Mode: ModeProbabilistic},
			Key:     "bench/checkpoint",
		}, 0)
		if err != nil {
			b.Fatal(err)
		}
		grades := make([]byte, 0, 1024)
		for off := 0; off < len(branches); off += 1024 {
			end := off + 1024
			if end > len(branches) {
				end = len(branches)
			}
			if grades, _ = sess.Serve(branches[off:end], grades[:0], 0); grades == nil {
				b.Fatal("session retired during warmup")
			}
		}
		return eng, sess
	}
	b.Run("encode", func(b *testing.B) {
		_, sess := newWarmEngine(b)
		var blob []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if blob, err = sess.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(blob)), "bytes/snapshot")
	})
	b.Run("write", func(b *testing.B) {
		eng, _ := newWarmEngine(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := eng.CheckpointDirty(int64(i), true); n != 1 {
				b.Fatalf("forced checkpoint pass wrote %d sessions, want 1", n)
			}
		}
	})
}

// BenchmarkPredictorSpeed measures raw predict+update throughput of the
// three configurations through the facade (complementing the per-package
// micro-benchmarks).
func BenchmarkPredictorSpeed(b *testing.B) {
	for _, cfg := range StandardConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			est := NewEstimator(cfg, Options{Mode: ModeProbabilistic})
			tr, err := TraceByName("INT-2")
			if err != nil {
				b.Fatal(err)
			}
			r := tr.Open()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br, err := r.Next()
				if err != nil {
					r = tr.Open()
					br, _ = r.Next()
				}
				est.Predict(br.PC)
				est.Update(br.PC, br.Taken)
			}
		})
	}
}
