//go:build !race

package repro

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
