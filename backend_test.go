package repro

import (
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestNewMatchesLegacyConstructor pins the facade redesign's core
// guarantee: New(spec, opts...) builds estimators bit-identical to the
// legacy NewEstimator(Config, Options) path.
func TestNewMatchesLegacyConstructor(t *testing.T) {
	tr, err := TraceByName("INT-3")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 15_000
	cases := []struct {
		name   string
		spec   string
		opts   []Option
		cfg    Config
		legacy Options
	}{
		{"plain-64K", "tage-64K", nil, Medium64K(), Options{}},
		{"prob-16K", "tage-16K?mode=probabilistic", nil, Small16K(), Options{Mode: ModeProbabilistic}},
		{"opt-mode", "tage-16K", []Option{WithMode(ModeProbabilistic)}, Small16K(), Options{Mode: ModeProbabilistic}},
		{"opt-adaptive", "tage-256K", []Option{WithMode(ModeAdaptive), WithTargetMKP(4), WithAdaptiveWindow(8192)},
			Large256K(), Options{Mode: ModeAdaptive, TargetMKP: 4, AdaptiveWindow: 8192}},
		{"opt-window", "tage-64K", []Option{WithBimWindow(-1)}, Medium64K(), Options{BimWindow: -1}},
		{"opt-seed", "tage-16K", []Option{WithSeed(77)},
			func() Config { c := Small16K(); c.Seed = 77; return c }(), Options{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := New(c.spec, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			viaSpec, err := Run(b, tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Run(NewEstimator(c.cfg, c.legacy), tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			if viaSpec != legacy {
				t.Fatalf("spec path diverged from legacy constructor:\nspec   %+v\nlegacy %+v", viaSpec, legacy)
			}
		})
	}
}

// TestFacadeBackends exercises the registry surface through the facade:
// listing, parsing, running non-TAGE backends, and error quality.
func TestFacadeBackends(t *testing.T) {
	fams := Backends()
	if len(fams) < 7 {
		t.Fatalf("only %d registered families", len(fams))
	}
	tr, err := TraceByName("FP-3")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"gshare-64K", "perceptron", "ogehl", "bimodal-16K", "jrs-64K", "ltage-16K"} {
		res, err := RunSpec(spec, tr, 5_000)
		if err != nil {
			t.Fatalf("RunSpec(%q): %v", spec, err)
		}
		if res.Branches != 5_000 {
			t.Fatalf("%s: ran %d branches", spec, res.Branches)
		}
	}
	sr, err := RunSuiteSpec("gshare-16K", CBP1()[:3], 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerTrace) != 3 || sr.Aggregate.Config != "gshare-16K" {
		t.Fatalf("suite spec run: %+v", sr.Aggregate)
	}
	if _, err := New("gshare-64K?nope=1"); err == nil || !strings.Contains(err.Error(), "log") {
		t.Fatalf("unknown param error should list accepted keys, got %v", err)
	}
	if _, err := ParseSpec("tage?x=="); err == nil {
		t.Fatal("malformed spec parsed")
	}
	// Options canonicalize into the spec (the built backend's label
	// reflects them).
	sp, err := ParseSpec("tage-16K?mode=adaptive&mkp=4")
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "tage-16K?mkp=4&mode=adaptive" {
		t.Fatalf("canonical spec = %q", sp.String())
	}
}

// TestServeSpecSessionZeroAllocs mirrors TestServeHotPathZeroAllocs for
// a non-TAGE (spec-built) session: the heterogeneous serving path must
// stay allocation-free per branch too.
func TestServeSpecSessionZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.NewEngine(serve.EngineConfig{})
	sess, err := eng.Open(serve.OpenRequest{Spec: "gshare-64K"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	batch := make([]trace.Branch, 1)
	grades := make([]byte, 0, 8)
	out := make([]byte, 0, 64)
	step := func(i int) {
		s, ok := eng.Lookup(id)
		if !ok {
			t.Fatal("session lost")
		}
		batch[0] = branches[i%len(branches)]
		grades, ok = s.Serve(batch, grades, int64(i))
		if !ok {
			t.Fatal("session retired")
		}
		out = serve.AppendPredictions(out[:0], id, grades)
	}
	for i := 0; i < 10_000; i++ {
		step(i)
	}
	i := 10_000
	allocs := testing.AllocsPerRun(20_000, func() {
		step(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per served branch on a spec session, want 0", allocs)
	}
}

// TestBackendHotPathZeroAllocs pins the generic (interface-dispatched)
// simulation loop at zero allocations per branch for a registry-built
// backend.
func TestBackendHotPathZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"gshare-64K", "perceptron", "ogehl", "ltage-16K"} {
		b, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, br := range branches[:10_000] {
			b.Predict(br.PC)
			b.Update(br.PC, br.Taken)
		}
		i := 10_000
		allocs := testing.AllocsPerRun(20_000, func() {
			br := branches[i%len(branches)]
			i++
			b.Predict(br.PC)
			b.Update(br.PC, br.Taken)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per predicted branch through the Backend interface, want 0", spec, allocs)
		}
	}
}
