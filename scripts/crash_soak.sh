#!/usr/bin/env bash
# Crash-recovery soak: boot a checkpointing tageserved, drive keyed
# replays through the router, kill -9 the server once its checkpoint
# loop has persisted state, restart it on the same address and state
# directory, and require the resumed replays to finish with tallies
# bit-identical to an uninterrupted offline sim.Run (tageload -verify
# recomputes the comparison inline). Run from the repository root; the
# tageserved/tageload binaries are built here if missing.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:7451}
STATE=$(mktemp -d)
SRVLOG=$(mktemp)
SRV=
cleanup() {
  if [ -n "$SRV" ]; then kill -9 "$SRV" 2>/dev/null || true; fi
  rm -rf "$STATE" "$SRVLOG" crash_load.txt
}
trap cleanup EXIT

[ -x ./tageserved ] || go build -o tageserved ./cmd/tageserved
[ -x ./tageload ] || go build -o tageload ./cmd/tageload

./tageserved -addr "$ADDR" -state-dir "$STATE" -checkpoint-interval 50ms &
SRV=$!
sleep 1

./tageload -nodes "$ADDR" -suite cbp1 -conns 4 -batch 512 -branches 200000 -verify > crash_load.txt &
LOAD=$!

# Kill -9 only after the checkpoint loop has written at least one
# session, and well before the pass completes.
for _ in $(seq 1 400); do
  if ls "$STATE"/*.ckpt >/dev/null 2>&1; then break; fi
  if ! kill -0 "$LOAD" 2>/dev/null; then
    echo "FAIL: load finished before any checkpoint landed" >&2
    exit 1
  fi
  sleep 0.05
done
ls "$STATE"/*.ckpt >/dev/null
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
echo "killed tageserved mid-replay; restarting on the same state dir"

./tageserved -addr "$ADDR" -state-dir "$STATE" -checkpoint-interval 50ms >"$SRVLOG" 2>&1 &
SRV=$!

wait "$LOAD"
cat crash_load.txt

# The restarted server must have warm-started from the checkpoints ...
grep -Eq "restored [1-9][0-9]* checkpointed sessions" "$SRVLOG"
# ... the router must have absorbed the crash as retries, not failures ...
awk '/retries=/ { for (i = 1; i <= NF; i++) if ($i ~ /^retries=/) { split($i, a, "="); r += a[2] } }
     END { exit (r > 0 ? 0 : 1) }' crash_load.txt
# ... and every replay must have verified bit-identical to offline.
grep -q "bit-identical to offline sim.Run" crash_load.txt

kill -TERM "$SRV"
wait "$SRV"
SRV=
echo "crash soak OK"
