#!/usr/bin/env bash
# Chaos soak: a stock tageserved behind a deterministic fault-injecting
# proxy (corruption, drops, resets, stalls past the server's frame
# timeout), driven by tageload through the failover-aware router with a
# hair-trigger circuit breaker and tight admission control on the
# server. The pass must still verify bit-identical to an uninterrupted
# offline sim.Run, and every hardening layer must actually have fired:
# load-shed batches, corrupt-frame rejections, slow-peer evictions,
# router recoveries and breaker transitions. Run from the repository
# root; binaries are built here if missing. SEED pins the fault
# schedule — it is printed on failure so any red run replays exactly.
set -euo pipefail

SEED=${SEED:-1337}
UPSTREAM=${UPSTREAM:-127.0.0.1:7471}
PROXY=${PROXY:-127.0.0.1:7472}
METRICS=${METRICS:-127.0.0.1:7473}
SRV=
PRX=
STATE_DIR=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL: chaos soak failed with SEED=$SEED (rerun with this seed to replay the fault schedule)" >&2
  fi
  if [ -n "$PRX" ]; then kill -9 "$PRX" 2>/dev/null || true; fi
  if [ -n "$SRV" ]; then kill -9 "$SRV" 2>/dev/null || true; fi
  rm -rf "$STATE_DIR" chaos_load.txt chaos_metrics.txt chaos_events.txt
}
trap cleanup EXIT

[ -x ./tageserved ] || go build -o tageserved ./cmd/tageserved
[ -x ./tageload ] || go build -o tageload ./cmd/tageload
[ -x ./faultproxy ] || go build -o faultproxy ./cmd/faultproxy

# Tight admission (one inflight batch for 8 connections) forces sheds;
# a 300ms frame timeout with 800ms proxy stalls forces slow-peer
# evictions; durable keyed sessions let every recovery resync exactly.
./tageserved -addr "$UPSTREAM" -metrics "$METRICS" \
  -max-inflight 1 -frame-timeout 300ms -event-buffer 65536 \
  -state-dir "$STATE_DIR" -checkpoint-interval 50ms &
SRV=$!

./faultproxy -listen "$PROXY" -upstream "$UPSTREAM" -seed "$SEED" \
  -corrupt 0.001 -drop 0.001 -reset 0.001 -stall 0.002 -stall-for 800ms &
PRX=$!
sleep 1

# The hair-trigger breaker (threshold 1, 100ms cooldown) opens on every
# injected failure and half-open-probes back — with a single node the
# router's fail-open pass keeps the run alive through open windows.
./tageload -nodes "$PROXY" -conns 8 -suite cbp1 -batch 512 -branches 300000 \
  -verify -timeout 2s -seed "$SEED" \
  -breaker-threshold 1 -breaker-cooldown 100ms > chaos_load.txt

cat chaos_load.txt

# The pass survived the chaos — but only exactly.
grep -q "bit-identical to offline sim.Run" chaos_load.txt

# Every hardening layer must have fired, or the soak proved nothing.
curl -fsS "http://$METRICS/metrics" > chaos_metrics.txt
metric() {
  awk -v m="$1" '$1 == m {print $2}' chaos_metrics.txt
}
for m in tage_serve_shed_total tage_serve_corrupt_frames_total tage_serve_slow_peer_evictions_total; do
  v=$(metric "$m")
  if [ "${v:-0}" -le 0 ]; then
    echo "FAIL: $m = ${v:-missing}, want > 0 (fault schedule never exercised this layer)" >&2
    exit 1
  fi
  echo "$m=$v"
done

# Router-side: recoveries (mid-stream resyncs), busy retries against the
# shedding server, and breaker open/close transitions.
rollup() {
  awk -v k="$1" '{ for (i = 1; i <= NF; i++) if ($i ~ "^" k "=") { split($i, a, "="); s += a[2] } }
       END { print s + 0 }' chaos_load.txt
}
for k in recoveries busy_retries breaker_opens breaker_closes; do
  v=$(rollup "$k")
  if [ "$v" -le 0 ]; then
    echo "FAIL: cluster roll-up $k=$v, want > 0" >&2
    exit 1
  fi
  echo "rollup $k=$v"
done

# The flight recorder must have caught the chaos it exists to explain:
# a shed, a slow-peer eviction, and — for at least one evicted session —
# the batch events that preceded the eviction.
curl -fsS "http://$METRICS/debug/events" > chaos_events.txt
grep -q "kind=shed" chaos_events.txt
grep -q "kind=slow-peer-evict" chaos_events.txt
EVICT_CONTEXT=0
for sid in $(awk '/kind=slow-peer-evict/ { for (i = 1; i <= NF; i++) if ($i ~ /^sess=/) { split($i, a, "="); print a[2] } }' chaos_events.txt | sort -u); do
  if grep -Eq "kind=batch .*sess=$sid " chaos_events.txt; then
    EVICT_CONTEXT=1
    break
  fi
done
if [ "$EVICT_CONTEXT" -ne 1 ]; then
  echo "FAIL: no evicted session has batch events in the flight-recorder dump" >&2
  exit 1
fi
echo "flight recorder captured shed + eviction events with batch context"

kill -TERM "$SRV"
wait "$SRV"
SRV=
kill -TERM "$PRX"
wait "$PRX" 2>/dev/null || true
PRX=
echo "chaos soak OK (seed $SEED)"
