#!/usr/bin/env bash
# Router smoke: a 2-node cluster with keyed sessions spread by
# consistent hashing, one node killed -9 mid-replay. Sessions placed on
# the dead node must fail over to the survivor and the whole pass must
# still verify bit-identical to an uninterrupted offline sim.Run. Run
# from the repository root; binaries are built here if missing.
set -euo pipefail

A=${A:-127.0.0.1:7461}
B=${B:-127.0.0.1:7462}
AMETRICS=${AMETRICS:-127.0.0.1:7463}
SRVA=
SRVB=
cleanup() {
  if [ -n "$SRVA" ]; then kill -9 "$SRVA" 2>/dev/null || true; fi
  if [ -n "$SRVB" ]; then kill -9 "$SRVB" 2>/dev/null || true; fi
  rm -f route_load.txt
}
trap cleanup EXIT

[ -x ./tageserved ] || go build -o tageserved ./cmd/tageserved
[ -x ./tageload ] || go build -o tageload ./cmd/tageload

./tageserved -addr "$A" -metrics "$AMETRICS" &
SRVA=$!
./tageserved -addr "$B" &
SRVB=$!
sleep 1

./tageload -nodes "$A,$B" -conns 4 -suite cbp1 -batch 512 -branches 400000 -verify > route_load.txt &
LOAD=$!

# Induce the failure once node A has actually served traffic (so live
# sessions are placed there), while the pass is still far from done.
for _ in $(seq 1 400); do
  served=$(curl -fsS "http://$AMETRICS/metrics" 2>/dev/null |
    awk '/^tage_serve_predictions_total/ {print $2}') || served=0
  if [ "${served:-0}" -gt 100000 ]; then break; fi
  if ! kill -0 "$LOAD" 2>/dev/null; then
    echo "FAIL: load finished before the induced node failure" >&2
    exit 1
  fi
  sleep 0.05
done
kill -9 "$SRVA"
wait "$SRVA" 2>/dev/null || true
SRVA=
echo "killed node $A mid-replay; sessions must fail over to $B"

wait "$LOAD"
cat route_load.txt

# At least one session must have failed over to the survivor ...
awk '/failovers=/ { for (i = 1; i <= NF; i++) if ($i ~ /^failovers=/) { split($i, a, "="); f += a[2] } }
     END { exit (f > 0 ? 0 : 1) }' route_load.txt
# ... every completed replay must have released its placement ...
awk '/sessions=/ { for (i = 1; i <= NF; i++) if ($i ~ /^sessions=/) { split($i, a, "="); s += a[2] } }
     END { exit (s == 0 ? 0 : 1) }' route_load.txt
# ... and the pass must still be exact.
grep -q "bit-identical to offline sim.Run" route_load.txt

kill -TERM "$SRVB"
wait "$SRVB"
SRVB=
echo "router smoke OK"
